// GraphService: the long-lived serving facade tying the front end
// together — resident graphs behind epoch-versioned handles
// (handle.hpp), bounded fair admission (queue.hpp), batch formation
// (batcher.hpp), fused execution (executor.hpp), and the resilience
// layer (resilience.hpp): per-query deadlines, backpressure with
// retry-after, per-tenant quotas + circuit breakers, and a health
// surface that keeps serving through a mid-traffic locale kill.
//
// Time is simulated throughout: a query's arrival is a simulated
// timestamp, service happens on the grid's modeled clocks, and its
// end-to-end latency (completion - arrival, including queueing) lands in
// the per-tenant `service.latency.us{tenant=}` histogram in simulated
// microseconds — the numbers the SLO gate in pgb_diff checks.
//
// Deadline contract: a query with deadline_s > 0 ends in exactly one of
// kDone (result, in budget) or kDeadlineExpired (no result) — the
// service NEVER returns a late result. Expiry is enforced at three
// stages, each counted under `service.expired{tenant=,stage=}`:
//   stage=queue      lazy eviction at step start (deadline passed while
//                    queued)
//   stage=admission  the fuse gate priced the batch via the closed-loop
//                    cost model and the estimate already blows the
//                    deadline — expiring now beats serving late
//   stage=post       execution finished past the deadline (estimate was
//                    low); the result is discarded, never surfaced
//
// Tenant metric taxonomy (all under service.*):
//   service.submitted{tenant=T}          offered queries per tenant
//   service.rejected{tenant=T,reason=R}  typed rejections (AdmitCode /
//                                        throttle cause)
//   service.expired{tenant=T,stage=S}    deadline expiries by stage
//   service.queue.depth                  gauge, live queued total
//   service.retry_after.s                gauge, last suggested retry-after
//   service.batches                      batches executed
//   service.batched_queries              queries that rode a width>1 batch
//   service.batch.width                  histogram of batch widths
//   service.latency.us{tenant=T}         end-to-end simulated latency
//   service.breaker.trips{tenant=T}      circuit-breaker trips
//   service.breaker.state{tenant=T}      gauge, 0 closed / 1 open / 2 half
//   service.records.live                 gauge, retained lifecycle records
//   service.records.retired              retired (compacted) records
//   service.health.*                     gauges from health()
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "runtime/locale_grid.hpp"
#include "service/batcher.hpp"
#include "service/event_log.hpp"
#include "service/executor.hpp"
#include "service/handle.hpp"
#include "service/query.hpp"
#include "service/queue.hpp"
#include "service/resilience.hpp"

namespace pgb {

struct ServiceConfig {
  int queue_depth = 64;
  int batch_max = 16;
  SpmspvOptions spmspv;
  /// Optional fault plan + rebuild policy for kill-mid-batch recovery.
  FaultPlan* plan = nullptr;
  RebuildOptions rebuild;
  /// Optional recovery telemetry sink (filled by the rebuild driver).
  RecoveryReport* report = nullptr;
  /// Per-tenant sustained admission rate (queries per simulated second);
  /// 0 disables quotas.
  double tenant_quota_qps = 0.0;
  /// Token-bucket burst capacity per tenant.
  double tenant_quota_burst = 8.0;
  /// Consecutive per-tenant failures (expiries + queue-full rejections)
  /// that trip its circuit breaker; 0 disables the breaker.
  int breaker_k = 0;
  /// Simulated seconds an open breaker holds before a half-open probe.
  double breaker_cooldown_s = 0.05;
  /// Floor for the suggested retry-after on queue-full (simulated s).
  double retry_floor_s = 1e-3;
  /// Compaction threshold: the released (terminal + polled) record
  /// prefix is dropped once it reaches this length, keeping the record
  /// book memory-steady under sustained traffic.
  int compact_watermark = 256;
  /// Periodic health snapshots into the service event log: every N calls
  /// to step() (0 = off). Only meaningful once set_event_log() attached
  /// a sink.
  int health_log_every = 0;
};

/// Lifecycle record of one submitted query.
struct QueryRecord {
  std::int64_t id = -1;
  int tenant = 0;
  QueryKind kind = QueryKind::kBfs;
  double arrival = 0.0;     ///< simulated submit time
  double deadline = std::numeric_limits<double>::infinity();
  double completion = 0.0;  ///< simulated completion/expiry time
  int batch_width = 0;      ///< width of the batch that served it
  QueryState state = QueryState::kQueued;
  bool done = false;        ///< state == kDone (kept for existing callers)
  bool polled = false;      ///< released by the client; compactable
  QueryResult result;       ///< valid only when state == kDone
};

class GraphService {
 public:
  GraphService(LocaleGrid& grid, ServiceConfig cfg)
      : grid_(grid),
        cfg_(cfg),
        queue_(static_cast<std::size_t>(cfg.queue_depth), &grid.metrics()),
        governor_(TenantGovernorConfig{cfg.tenant_quota_qps,
                                       cfg.tenant_quota_burst, cfg.breaker_k,
                                       cfg.breaker_cooldown_s}) {
    PGB_REQUIRE(cfg.queue_depth >= 1, "service: queue_depth must be >= 1");
    PGB_REQUIRE(cfg.batch_max >= 1, "service: batch_max must be >= 1");
    PGB_REQUIRE(cfg.tenant_quota_qps >= 0.0,
                "service: tenant_quota_qps must be >= 0");
    PGB_REQUIRE(cfg.tenant_quota_burst >= 1.0,
                "service: tenant_quota_burst must be >= 1");
    PGB_REQUIRE(cfg.breaker_k >= 0, "service: breaker_k must be >= 0");
    PGB_REQUIRE(cfg.breaker_cooldown_s > 0.0,
                "service: breaker_cooldown_s must be > 0");
    PGB_REQUIRE(cfg.retry_floor_s > 0.0,
                "service: retry_floor_s must be > 0");
    PGB_REQUIRE(cfg.compact_watermark >= 1,
                "service: compact_watermark must be >= 1");
    PGB_REQUIRE(cfg.health_log_every >= 0,
                "service: health_log_every must be >= 0");
    last_membership_epoch_ = grid.membership_epoch();
  }

  GraphStore& store() { return store_; }

  /// Attaches the structured event-log sink. Every lifecycle decision
  /// from here on — admits, typed rejections, expiries by stage, breaker
  /// transitions, store publishes, degrade/rebuild, periodic health —
  /// appends one simulated-time-stamped JSONL line (event_log.hpp).
  void set_event_log(ServiceEventLog* log) {
    elog_ = log;
    if (log != nullptr) {
      store_.set_change_hook([this](const char* op, GraphStore::HandleId h,
                                    std::uint64_t epoch) {
        if (elog_ == nullptr) return;
        elog_->emit(grid_.time(), op,
                    {{"handle", ev_int(h)},
                     {"epoch", ev_int(static_cast<std::int64_t>(epoch))}});
      });
    } else {
      store_.set_change_hook(nullptr);
    }
  }
  ServiceEventLog* event_log() { return elog_; }

  /// Installs a recovery callback on the rebuild driver: called with the
  /// dead logical locale after a degraded remap, before the interrupted
  /// query batch resumes. The ingest stream registers its replay here so
  /// a kill landing inside a *query* batch still restores the delta log
  /// and base mirror it carried (a kill inside an ingest apply is handled
  /// by the stream's own retry loop).
  void set_rebuild_hook(std::function<void(int logical)> hook) {
    cfg_.rebuild.on_rebuild = std::move(hook);
  }

  struct Submitted {
    AdmitCode code = AdmitCode::kAdmitted;
    std::int64_t id = -1;  ///< valid only when admitted
    /// Suggested simulated retry-after, filled on kQueueFull: the time
    /// to drain the backlog at the observed service rate (floored).
    double retry_after_s = 0.0;
  };

  /// Offers a query against handle `h` at simulated time `arrival`.
  /// `expected_epoch` (0 = don't care) pins the epoch the client
  /// believes is current: a mismatch is a typed kStaleHandle rejection.
  /// Unknown/closed handles throw InvalidHandleError (a programming
  /// error, not load shedding).
  Submitted submit(GraphStore::HandleId h, const QuerySpec& spec,
                   double arrival, std::uint64_t expected_epoch = 0) {
    auto& mx = grid_.metrics();
    mx.counter("service.submitted", tenant_labels(spec.tenant)).inc();
    GraphSnapshot snap = store_.snapshot(h);
    if (expected_epoch != 0 && expected_epoch != snap.epoch) {
      return reject(spec, AdmitCode::kStaleHandle, arrival);
    }
    if (spec.source < 0 || spec.source >= snap.graph->nrows() ||
        spec.depth < 0 || spec.deadline_s < 0.0) {
      return reject(spec, AdmitCode::kBadQuery, arrival);
    }
    const TenantGovernor::Verdict v = governor_.admit(spec.tenant, arrival);
    if (v.code != AdmitCode::kAdmitted) {
      Submitted s = reject(spec, v.code, arrival, v.why);
      sync_breakers(arrival);
      return s;
    }
    if (queue_.size() >= queue_.capacity()) {
      // Queue full: the rejection carries a retry-after hint, and counts
      // as a service failure toward the tenant's breaker (the service,
      // not the tenant's request, was at fault — but K in a row means
      // this tenant's traffic cannot be served and should back off hard).
      // Checked *before* minting a trace context so rejected queries
      // never allocate a per-query track (span count == admitted).
      Submitted s = reject(spec, AdmitCode::kQueueFull, arrival);
      s.retry_after_s = cost_.retry_after(queue_.size(), cfg_.retry_floor_s);
      mx.gauge("service.retry_after.s").set(s.retry_after_s);
      note_failure(spec.tenant, arrival);
      sync_breakers(arrival);
      return s;
    }
    PendingQuery q;
    q.id = base_ + static_cast<std::int64_t>(records_.size());
    q.spec = spec;
    q.snap = std::move(snap);
    q.arrival = arrival;
    if (spec.deadline_s > 0.0) q.deadline = arrival + spec.deadline_s;
    const double deadline = q.deadline;
    obs::TraceSession* ts = grid_.trace_session();
    if (ts != nullptr) {
      // Mint the query's trace context: a dedicated named track above the
      // locale tracks, with the queued span opened at arrival. The span
      // chain queued -> admitted -> fused shares boundary timestamps, so
      // the track's depth-0 spans cover arrival -> terminal gaplessly.
      q.trace.id = q.id;
      q.trace.tenant = spec.tenant;
      q.trace.epoch = q.snap.epoch;
      q.trace.grid_epoch = grid_.epoch();
      q.trace.track = ts->alloc_named_track(
          "query " + std::to_string(q.id) + " (tenant " +
          std::to_string(spec.tenant) + ")");
      ts->begin_span(q.trace.track, "query.queued", arrival,
                     {{"id", std::to_string(q.id)},
                      {"tenant", std::to_string(spec.tenant)},
                      {"kind", to_string(spec.kind)},
                      {"epoch", std::to_string(q.trace.epoch)}});
    }
    if (elog_ != nullptr) {
      elog_->emit(arrival, "admit",
                  {{"id", ev_int(q.id)},
                   {"tenant", ev_int(spec.tenant)},
                   {"kind", ev_str(to_string(spec.kind))},
                   {"epoch", ev_int(static_cast<std::int64_t>(q.snap.epoch))},
                   {"deadline_s", ev_num(spec.deadline_s)}});
    }
    const AdmitCode code = queue_.offer(std::move(q));
    PGB_ASSERT(code == AdmitCode::kAdmitted,
               "service: offer failed after capacity pre-check");
    QueryRecord rec;
    rec.id = base_ + static_cast<std::int64_t>(records_.size());
    rec.tenant = spec.tenant;
    rec.kind = spec.kind;
    rec.arrival = arrival;
    rec.deadline = deadline;
    records_.push_back(std::move(rec));
    return Submitted{AdmitCode::kAdmitted, records_.back().id, 0.0};
  }

  /// submit() that turns rejections into typed exceptions — the C API's
  /// path, so GrB codes flow from map_exception.
  Submitted submit_strict(GraphStore::HandleId h, const QuerySpec& spec,
                          double arrival, std::uint64_t expected_epoch = 0) {
    Submitted s = submit(h, spec, arrival, expected_epoch);
    if (s.code == AdmitCode::kQueueFull) {
      throw ServiceOverloaded("service: admission queue full (depth " +
                              std::to_string(queue_.capacity()) + ")");
    }
    if (s.code == AdmitCode::kStaleHandle) {
      throw InvalidHandleError("service: stale epoch " +
                               std::to_string(expected_epoch) + " for handle " +
                               std::to_string(h));
    }
    if (s.code == AdmitCode::kTenantThrottled) {
      throw TenantThrottled("service: tenant " + std::to_string(spec.tenant) +
                            " throttled (quota or breaker)");
    }
    return s;
  }

  /// Serves one scheduling round: evicts queued queries whose deadline
  /// already passed, forms a batch through the deadline fuse gate, and
  /// executes it. Returns false only when nothing was left to do —
  /// a round that only expired queries still returns true.
  bool step() {
    const double now = grid_.time();
    ++steps_;
    maybe_log_health(now);
    const bool evicted = finalize_expired(queue_.take_expired(now), "queue");
    if (queue_.empty()) {
      sync_breakers(now);
      return evicted;
    }
    // The fuse gate prices the candidate batch with the closed-loop cost
    // model: refuse to fuse a query whose deadline the estimate already
    // blows (waiting can only make it later). Uncalibrated kinds price
    // at 0 — optimistically admitted until the first batch lands.
    const auto gate = [this, now](const PendingQuery& p, int width) {
      if (std::isinf(p.deadline)) return true;
      const double start = std::max(now, p.arrival);
      return p.deadline >= start + cost_.estimate(p.spec.kind, width);
    };
    std::vector<PendingQuery> refused;
    std::vector<PendingQuery> batch =
        form_batch(queue_, cfg_.batch_max, gate, &refused);
    finalize_expired(refused, "admission");
    if (batch.empty()) {
      sync_breakers(now);
      return true;  // the gate refused every seed
    }
    double start = now;
    for (const auto& q : batch) start = std::max(start, q.arrival);
    for (int l = 0; l < grid_.num_locales(); ++l) {
      grid_.clock(l).advance_to(start);
    }
    // Per-query spans: close queued at max(now, arrival), bridge with an
    // admitted span to the batch start, then open the fused span the
    // execution's per-level spans nest inside. Shared boundary times keep
    // each track's depth-0 coverage gapless from arrival to terminal.
    ++batch_seq_;
    {
      obs::TraceSession* ts = grid_.trace_session();
      const std::string b = std::to_string(batch_seq_);
      const std::string w = std::to_string(batch.size());
      for (const auto& q : batch) {
        if (ts == nullptr || !trace_live(q.trace)) continue;
        const double qend = std::max(now, q.arrival);
        ts->end_span(q.trace.track, qend);
        ts->begin_span(q.trace.track, "query.admitted", qend);
        ts->end_span(q.trace.track, start);
        ts->begin_span(q.trace.track, "query.fused", start,
                       {{"batch", b}, {"width", w}});
      }
    }
    ExecOptions eopt;
    eopt.spmspv = cfg_.spmspv;
    eopt.plan = cfg_.plan;
    eopt.rebuild = cfg_.rebuild;
    eopt.report = cfg_.report;
    std::vector<QueryResult> results = execute_batch(batch, eopt);
    const double end = grid_.time();
    for (const auto& q : batch) {
      obs::TraceSession* ts = grid_.trace_session();
      if (ts != nullptr && trace_live(q.trace)) {
        ts->end_span(q.trace.track, end);  // close query.fused
      }
    }
    cost_.observe_batch(batch.front().spec.kind,
                        static_cast<int>(batch.size()), end - start);
    auto& mx = grid_.metrics();
    mx.counter("service.batches").inc();
    if (batch.size() > 1) {
      mx.counter("service.batched_queries")
          .inc(static_cast<std::int64_t>(batch.size()));
    }
    mx.histogram("service.batch.width")
        .observe(static_cast<std::int64_t>(batch.size()));
    obs::TraceSession* ts = grid_.trace_session();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      QueryRecord& rec = record_mut(batch[i].id);
      rec.completion = end;
      rec.batch_width = static_cast<int>(batch.size());
      const bool traced = ts != nullptr && trace_live(batch[i].trace);
      if (end > batch[i].deadline) {
        // Late result: the estimate undershot. Discard — the deadline
        // contract ("never a silent late result") outranks the work done.
        rec.state = QueryState::kDeadlineExpired;
        mx.counter("service.expired", expired_labels(rec.tenant, "post"))
            .inc();
        note_failure(rec.tenant, end);
        if (traced) {
          ts->instant(batch[i].trace.track, "query.expired", end,
                      {{"stage", "post"}});
        }
        if (elog_ != nullptr) {
          elog_->emit(end, "expire",
                      {{"id", ev_int(rec.id)},
                       {"tenant", ev_int(rec.tenant)},
                       {"stage", ev_str("post")}});
        }
        continue;
      }
      rec.state = QueryState::kDone;
      rec.done = true;
      rec.result = std::move(results[i]);
      governor_.on_success(rec.tenant, end);
      const double lat_us = (end - rec.arrival) * 1e6;
      mx.histogram("service.latency.us", tenant_labels(rec.tenant))
          .observe(static_cast<std::int64_t>(std::llround(lat_us)));
      if (traced) {
        ts->instant(batch[i].trace.track, "query.done", end,
                    {{"latency_us", ev_num(lat_us)}});
      }
      if (elog_ != nullptr) {
        elog_->emit(end, "done",
                    {{"id", ev_int(rec.id)},
                     {"tenant", ev_int(rec.tenant)},
                     {"width", ev_int(rec.batch_width)},
                     {"latency_us", ev_num(lat_us)}});
      }
    }
    note_grid_events(end);
    sync_breakers(end);
    return true;
  }

  /// Serves until the queue drains.
  void drain() {
    while (step()) {
    }
  }

  std::size_t queue_size() const { return queue_.size(); }

  const QueryRecord& record(std::int64_t id) const {
    PGB_REQUIRE(id >= base_, "service: query id already retired");
    PGB_REQUIRE(id - base_ < static_cast<std::int64_t>(records_.size()),
                "service: unknown query id");
    return records_[static_cast<std::size_t>(id - base_)];
  }

  /// Marks a terminal record as consumed by the client, making it
  /// eligible for compaction. Queued queries cannot be released.
  void release(std::int64_t id) {
    QueryRecord& rec = record_mut(id);
    PGB_REQUIRE(rec.state != QueryState::kQueued,
                "service: release of a still-queued query");
    rec.polled = true;
    compact();
  }

  /// Records still retained (post-compaction window).
  const std::deque<QueryRecord>& records() const { return records_; }

  std::int64_t records_live() const {
    return static_cast<std::int64_t>(records_.size());
  }
  std::int64_t records_retired() const { return base_; }

  const ServiceCostModel& cost_model() const { return cost_; }
  TenantGovernor& governor() { return governor_; }

  /// Builds the health surface and publishes it as gauges, so profiles
  /// (and the pgb_diff gates over them) see mode flips, breaker state,
  /// and load at snapshot time.
  ServiceHealth health() {
    const Membership& m = grid_.membership();
    ServiceHealth h;
    int degraded = 0;
    for (int l = 0; l < m.size(); ++l) degraded += m.host(l) != l ? 1 : 0;
    h.mode = m.remapped() ? "degraded" : "normal";
    h.degraded_locales = degraded;
    h.active_hosts = m.active();
    h.queue_depth = queue_.size();
    h.records_live = records_live();
    h.service_rate = cost_.service_rate();
    const double now = grid_.time();
    for (int t : governor_.tenants()) {
      h.tenants.push_back(
          TenantHealth{t, governor_.state(t, now), governor_.trips(t)});
    }
    auto& mx = grid_.metrics();
    mx.gauge("service.health.mode_degraded").set(m.remapped() ? 1.0 : 0.0);
    mx.gauge("service.health.degraded_locales")
        .set(static_cast<double>(degraded));
    mx.gauge("service.health.active_hosts")
        .set(static_cast<double>(h.active_hosts));
    mx.gauge("service.records.live").set(static_cast<double>(records_live()));
    for (const auto& t : h.tenants) {
      mx.gauge("service.breaker.state", tenant_labels(t.tenant))
          .set(t.breaker == BreakerState::kClosed   ? 0.0
               : t.breaker == BreakerState::kOpen   ? 1.0
                                                    : 2.0);
    }
    return h;
  }

 private:
  static obs::Labels tenant_labels(int tenant) {
    return {{"tenant", std::to_string(tenant)}};
  }

  static obs::Labels expired_labels(int tenant, const char* stage) {
    return {{"tenant", std::to_string(tenant)}, {"stage", stage}};
  }

  QueryRecord& record_mut(std::int64_t id) {
    PGB_REQUIRE(id >= base_, "service: query id already retired");
    PGB_REQUIRE(id - base_ < static_cast<std::int64_t>(records_.size()),
                "service: unknown query id");
    return records_[static_cast<std::size_t>(id - base_)];
  }

  Submitted reject(const QuerySpec& spec, AdmitCode code, double t,
                   const char* why = nullptr) {
    const char* reason = why != nullptr ? why : to_string(code);
    grid_.metrics()
        .counter("service.rejected", {{"tenant", std::to_string(spec.tenant)},
                                      {"reason", reason}})
        .inc();
    // Rejected queries never mint a per-query track: the rejection is an
    // instant on locale track 0, so per-query track count == admitted.
    obs::TraceSession* ts = grid_.trace_session();
    if (ts != nullptr) {
      ts->instant(0, "query.rejected", t,
                  {{"tenant", std::to_string(spec.tenant)},
                   {"kind", to_string(spec.kind)},
                   {"reason", reason}});
    }
    if (elog_ != nullptr) {
      elog_->emit(t, "reject",
                  {{"tenant", ev_int(spec.tenant)},
                   {"kind", ev_str(to_string(spec.kind))},
                   {"reason", ev_str(reason)}});
    }
    return Submitted{code, -1, 0.0};
  }

  /// True when this query's spans may be stamped: a context was minted
  /// and the grid has not been reset since (a reset clears the session,
  /// so an old context's track id points into a dead trace).
  bool trace_live(const QueryTraceContext& tc) const {
    return tc.traced() && tc.grid_epoch == grid_.epoch();
  }

  /// Diffs every tenant's breaker state against the last observation and
  /// logs one "breaker" event per transition (including the time-driven
  /// open -> half_open cooldown edge, stamped when the service sees it).
  void sync_breakers(double now) {
    for (int t : governor_.tenants()) {
      const BreakerState s = governor_.state(t, now);
      auto it = breaker_seen_.find(t);
      const BreakerState prev =
          it == breaker_seen_.end() ? BreakerState::kClosed : it->second;
      if (s != prev && elog_ != nullptr) {
        elog_->emit(now, "breaker",
                    {{"tenant", ev_int(t)},
                     {"from", ev_str(to_string(prev))},
                     {"to", ev_str(to_string(s))}});
      }
      breaker_seen_[t] = s;
    }
  }

  /// Logs membership remaps (degrade/recover) and localized rebuilds by
  /// diffing the grid's membership epoch and the recovery report against
  /// the last step's view.
  void note_grid_events(double t) {
    const std::uint64_t me = grid_.membership_epoch();
    if (me != last_membership_epoch_) {
      last_membership_epoch_ = me;
      if (elog_ != nullptr) {
        const Membership& m = grid_.membership();
        int degraded = 0;
        for (int l = 0; l < m.size(); ++l) degraded += m.host(l) != l ? 1 : 0;
        elog_->emit(t, "degrade",
                    {{"mode", ev_str(m.remapped() ? "degraded" : "normal")},
                     {"membership_epoch",
                      ev_int(static_cast<std::int64_t>(me))},
                     {"degraded_locales", ev_int(degraded)},
                     {"active_hosts", ev_int(m.active())}});
      }
    }
    if (cfg_.report != nullptr) {
      if (cfg_.report->rebuilds > last_rebuilds_ && elog_ != nullptr) {
        elog_->emit(t, "rebuild",
                    {{"rebuilds", ev_int(cfg_.report->rebuilds)},
                     {"rounds_replayed", ev_int(cfg_.report->rounds_replayed)},
                     {"bytes_restored", ev_int(cfg_.report->bytes_restored)}});
      }
      last_rebuilds_ = cfg_.report->rebuilds;
    }
  }

  /// Periodic health snapshot into the event log (cfg.health_log_every
  /// steps; also publishes the health gauges as a side effect).
  void maybe_log_health(double t) {
    if (elog_ == nullptr || cfg_.health_log_every <= 0) return;
    if (steps_ % cfg_.health_log_every != 0) return;
    const ServiceHealth hh = health();
    elog_->emit(t, "health",
                {{"mode", ev_str(hh.mode)},
                 {"degraded_locales", ev_int(hh.degraded_locales)},
                 {"active_hosts", ev_int(hh.active_hosts)},
                 {"queue_depth",
                  ev_int(static_cast<std::int64_t>(hh.queue_depth))},
                 {"records_live", ev_int(hh.records_live)},
                 {"service_rate", ev_num(hh.service_rate)},
                 {"open_breakers", ev_int(hh.open_breakers())}});
  }

  /// Feeds one failure into the tenant's breaker; counts a trip.
  void note_failure(int tenant, double now) {
    if (governor_.on_failure(tenant, now)) {
      grid_.metrics()
          .counter("service.breaker.trips", tenant_labels(tenant))
          .inc();
    }
  }

  /// Moves evicted/refused queries into the kDeadlineExpired terminal
  /// state; returns whether anything expired.
  bool finalize_expired(std::vector<PendingQuery> expired, const char* stage) {
    if (expired.empty()) return false;
    const double now = grid_.time();
    auto& mx = grid_.metrics();
    obs::TraceSession* ts = grid_.trace_session();
    for (auto& q : expired) {
      QueryRecord& rec = record_mut(q.id);
      rec.state = QueryState::kDeadlineExpired;
      rec.completion = std::max(now, q.arrival);
      mx.counter("service.expired", expired_labels(rec.tenant, stage)).inc();
      note_failure(rec.tenant, rec.completion);
      if (ts != nullptr && trace_live(q.trace)) {
        ts->end_span(q.trace.track, rec.completion);  // close query.queued
        ts->instant(q.trace.track, "query.expired", rec.completion,
                    {{"stage", stage}});
      }
      if (elog_ != nullptr) {
        elog_->emit(rec.completion, "expire",
                    {{"id", ev_int(q.id)},
                     {"tenant", ev_int(rec.tenant)},
                     {"stage", ev_str(stage)}});
      }
    }
    return true;
  }

  /// Drops the released prefix of the record book once it reaches the
  /// watermark. Only a *prefix* retires — ids stay dense and record(id)
  /// stays O(1) via the base_ offset.
  void compact() {
    std::size_t n = 0;
    while (n < records_.size() && records_[n].polled) ++n;
    if (n < static_cast<std::size_t>(cfg_.compact_watermark)) return;
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<std::ptrdiff_t>(n));
    base_ += static_cast<std::int64_t>(n);
    auto& mx = grid_.metrics();
    mx.counter("service.records.retired").inc(static_cast<std::int64_t>(n));
    mx.gauge("service.records.live").set(static_cast<double>(records_.size()));
  }

  LocaleGrid& grid_;
  ServiceConfig cfg_;
  GraphStore store_;
  AdmissionQueue queue_;
  TenantGovernor governor_;
  ServiceCostModel cost_;
  std::deque<QueryRecord> records_;
  std::int64_t base_ = 0;  ///< id of records_.front(); retired count
  ServiceEventLog* elog_ = nullptr;
  std::int64_t steps_ = 0;      ///< step() calls (health-log cadence)
  std::int64_t batch_seq_ = 0;  ///< executed batches (query.fused arg)
  std::map<int, BreakerState> breaker_seen_;  ///< last logged state
  std::uint64_t last_membership_epoch_ = 0;
  std::int64_t last_rebuilds_ = 0;
};

}  // namespace pgb
