// GraphService: the long-lived serving facade tying the front end
// together — resident graphs behind epoch-versioned handles
// (handle.hpp), bounded fair admission (queue.hpp), batch formation
// (batcher.hpp), and fused execution (executor.hpp).
//
// Time is simulated throughout: a query's arrival is a simulated
// timestamp, service happens on the grid's modeled clocks, and its
// end-to-end latency (completion - arrival, including queueing) lands in
// the per-tenant `service.latency.us{tenant=}` histogram in simulated
// microseconds — the numbers the SLO gate in pgb_diff checks.
//
// Tenant metric taxonomy (all under service.*):
//   service.submitted{tenant=T}          offered queries per tenant
//   service.rejected{tenant=T,reason=R}  typed rejections (AdmitCode)
//   service.queue.depth                  gauge, live queued total
//   service.batches                      batches executed
//   service.batched_queries              queries that rode a width>1 batch
//   service.batch.width                  histogram of batch widths
//   service.latency.us{tenant=T}         end-to-end simulated latency
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/locale_grid.hpp"
#include "service/batcher.hpp"
#include "service/executor.hpp"
#include "service/handle.hpp"
#include "service/query.hpp"
#include "service/queue.hpp"

namespace pgb {

struct ServiceConfig {
  int queue_depth = 64;
  int batch_max = 16;
  SpmspvOptions spmspv;
  /// Optional fault plan + rebuild policy for kill-mid-batch recovery.
  FaultPlan* plan = nullptr;
  RebuildOptions rebuild;
};

/// Lifecycle record of one submitted query.
struct QueryRecord {
  std::int64_t id = -1;
  int tenant = 0;
  QueryKind kind = QueryKind::kBfs;
  double arrival = 0.0;     ///< simulated submit time
  double completion = 0.0;  ///< simulated completion time
  int batch_width = 0;      ///< width of the batch that served it
  bool done = false;
  QueryResult result;
};

class GraphService {
 public:
  GraphService(LocaleGrid& grid, ServiceConfig cfg)
      : grid_(grid),
        cfg_(cfg),
        queue_(static_cast<std::size_t>(cfg.queue_depth), &grid.metrics()) {
    PGB_REQUIRE(cfg.queue_depth >= 1, "service: queue_depth must be >= 1");
    PGB_REQUIRE(cfg.batch_max >= 1, "service: batch_max must be >= 1");
  }

  GraphStore& store() { return store_; }

  struct Submitted {
    AdmitCode code = AdmitCode::kAdmitted;
    std::int64_t id = -1;  ///< valid only when admitted
  };

  /// Offers a query against handle `h` at simulated time `arrival`.
  /// `expected_epoch` (0 = don't care) pins the epoch the client
  /// believes is current: a mismatch is a typed kStaleHandle rejection.
  /// Unknown/closed handles throw InvalidHandleError (a programming
  /// error, not load shedding).
  Submitted submit(GraphStore::HandleId h, const QuerySpec& spec,
                   double arrival, std::uint64_t expected_epoch = 0) {
    auto& mx = grid_.metrics();
    mx.counter("service.submitted", tenant_labels(spec.tenant)).inc();
    GraphSnapshot snap = store_.snapshot(h);
    if (expected_epoch != 0 && expected_epoch != snap.epoch) {
      return reject(spec, AdmitCode::kStaleHandle);
    }
    if (spec.source < 0 || spec.source >= snap.graph->nrows() ||
        spec.depth < 0) {
      return reject(spec, AdmitCode::kBadQuery);
    }
    PendingQuery q;
    q.id = static_cast<std::int64_t>(records_.size());
    q.spec = spec;
    q.snap = std::move(snap);
    q.arrival = arrival;
    const AdmitCode code = queue_.offer(std::move(q));
    if (code != AdmitCode::kAdmitted) return reject(spec, code);
    QueryRecord rec;
    rec.id = static_cast<std::int64_t>(records_.size());
    rec.tenant = spec.tenant;
    rec.kind = spec.kind;
    rec.arrival = arrival;
    records_.push_back(std::move(rec));
    return Submitted{AdmitCode::kAdmitted, records_.back().id};
  }

  /// submit() that turns a full-queue rejection into ServiceOverloaded —
  /// the C API's path, so GrB_OUT_OF_RESOURCES flows from map_exception.
  Submitted submit_strict(GraphStore::HandleId h, const QuerySpec& spec,
                          double arrival, std::uint64_t expected_epoch = 0) {
    Submitted s = submit(h, spec, arrival, expected_epoch);
    if (s.code == AdmitCode::kQueueFull) {
      throw ServiceOverloaded("service: admission queue full (depth " +
                              std::to_string(queue_.capacity()) + ")");
    }
    if (s.code == AdmitCode::kStaleHandle) {
      throw InvalidHandleError("service: stale epoch " +
                               std::to_string(expected_epoch) + " for handle " +
                               std::to_string(h));
    }
    return s;
  }

  /// Serves one batch; returns false when the queue is empty. Idle
  /// clocks fast-forward to the batch's newest arrival (a query cannot
  /// be served before it arrives).
  bool step() {
    if (queue_.empty()) return false;
    std::vector<PendingQuery> batch = form_batch(queue_, cfg_.batch_max);
    double start = grid_.time();
    for (const auto& q : batch) start = std::max(start, q.arrival);
    for (int l = 0; l < grid_.num_locales(); ++l) {
      grid_.clock(l).advance_to(start);
    }
    ExecOptions eopt;
    eopt.spmspv = cfg_.spmspv;
    eopt.plan = cfg_.plan;
    eopt.rebuild = cfg_.rebuild;
    std::vector<QueryResult> results = execute_batch(batch, eopt);
    const double end = grid_.time();
    auto& mx = grid_.metrics();
    mx.counter("service.batches").inc();
    if (batch.size() > 1) {
      mx.counter("service.batched_queries")
          .inc(static_cast<std::int64_t>(batch.size()));
    }
    mx.histogram("service.batch.width")
        .observe(static_cast<std::int64_t>(batch.size()));
    for (std::size_t i = 0; i < batch.size(); ++i) {
      QueryRecord& rec = records_[static_cast<std::size_t>(batch[i].id)];
      rec.completion = end;
      rec.batch_width = static_cast<int>(batch.size());
      rec.done = true;
      rec.result = std::move(results[i]);
      const double lat_us = (end - rec.arrival) * 1e6;
      mx.histogram("service.latency.us", tenant_labels(rec.tenant))
          .observe(static_cast<std::int64_t>(std::llround(lat_us)));
    }
    return true;
  }

  /// Serves until the queue drains.
  void drain() {
    while (step()) {
    }
  }

  std::size_t queue_size() const { return queue_.size(); }

  const QueryRecord& record(std::int64_t id) const {
    PGB_REQUIRE(id >= 0 && id < static_cast<std::int64_t>(records_.size()),
                "service: unknown query id");
    return records_[static_cast<std::size_t>(id)];
  }

  const std::vector<QueryRecord>& records() const { return records_; }

 private:
  static obs::Labels tenant_labels(int tenant) {
    return {{"tenant", std::to_string(tenant)}};
  }

  Submitted reject(const QuerySpec& spec, AdmitCode code) {
    grid_.metrics()
        .counter("service.rejected", {{"tenant", std::to_string(spec.tenant)},
                                      {"reason", to_string(code)}})
        .inc();
    return Submitted{code, -1};
  }

  LocaleGrid& grid_;
  ServiceConfig cfg_;
  GraphStore store_;
  AdmissionQueue queue_;
  std::vector<QueryRecord> records_;
};

}  // namespace pgb
