// Admission-control queue: bounded depth, per-tenant FIFO lanes, and a
// deterministic round-robin fair dequeue.
//
// Admission is the service's overload valve: when the bounded queue is
// at capacity, offers are rejected with AdmitCode::kQueueFull (typed, so
// clients back off instead of timing out). Inside the bound, each tenant
// has its own FIFO lane; dequeue serves tenants round-robin by tenant id
// (ties and wrap order fixed by the id ordering), so a tenant flooding
// the queue delays only its own lane, not everyone's p95.
//
// Determinism: the queue's behavior is a pure function of the offer
// sequence — no wall clock, no hashing by pointer — so same-seed served
// traces are identical.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <vector>

#include "obs/metrics.hpp"
#include "service/handle.hpp"
#include "service/query.hpp"

namespace pgb {

/// An admitted query waiting for a batch: the spec plus the snapshot it
/// was admitted against, its arrival, and its absolute deadline, all in
/// simulated seconds (deadline = arrival + spec.deadline_s; +inf when
/// the query has no deadline).
struct PendingQuery {
  std::int64_t id = -1;
  QuerySpec spec;
  GraphSnapshot snap;
  double arrival = 0.0;
  double deadline = std::numeric_limits<double>::infinity();
  /// Rides with the query from submit through batching into execution,
  /// so every layer stamps spans on the query's own trace track.
  QueryTraceContext trace;
};

class AdmissionQueue {
 public:
  /// `depth` bounds the total queued queries across all tenants;
  /// `mx` (optional) receives the `service.queue.depth` gauge.
  explicit AdmissionQueue(std::size_t depth, obs::MetricsRegistry* mx = nullptr)
      : depth_(depth), mx_(mx) {
    publish_depth();
  }

  /// Admits or rejects; never throws for a full queue (rejection is
  /// normal control flow — the strict C API path wraps it).
  AdmitCode offer(PendingQuery q) {
    if (size_ >= depth_) return AdmitCode::kQueueFull;
    lanes_[q.spec.tenant].push_back(std::move(q));
    ++size_;
    publish_depth();
    return AdmitCode::kAdmitted;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return depth_; }

  /// Round-robin fair pop: the head of the first non-empty tenant lane
  /// strictly after the last-served tenant id (wrapping).
  PendingQuery pop_fair() {
    PGB_ASSERT(size_ > 0, "admission queue: pop from empty queue");
    const int t = next_tenant_after(cursor_);
    cursor_ = t;
    return pop_head(t);
  }

  /// Head of one tenant's lane (nullptr when empty). The batcher may
  /// only ever take *heads* — per-tenant FIFO order is part of the
  /// fairness contract.
  const PendingQuery* head(int tenant) const {
    auto it = lanes_.find(tenant);
    if (it == lanes_.end() || it->second.empty()) return nullptr;
    return &it->second.front();
  }

  PendingQuery pop_head(int tenant) {
    auto it = lanes_.find(tenant);
    PGB_ASSERT(it != lanes_.end() && !it->second.empty(),
               "admission queue: pop_head of empty lane");
    PendingQuery q = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) lanes_.erase(it);
    --size_;
    publish_depth();
    return q;
  }

  /// Lazy deadline eviction: removes and returns every queued query
  /// whose deadline has passed at simulated time `now` (ordered by
  /// tenant id, FIFO within a lane). Lanes emptied by eviction are
  /// erased, so a tenant lane holding only expired queries can never
  /// stall the round-robin dequeue, and the `service.queue.depth` gauge
  /// stays coherent with the post-eviction size.
  std::vector<PendingQuery> take_expired(double now) {
    std::vector<PendingQuery> out;
    for (auto it = lanes_.begin(); it != lanes_.end();) {
      auto& lane = it->second;
      std::deque<PendingQuery> kept;
      for (auto& q : lane) {
        if (q.deadline < now) {
          out.push_back(std::move(q));
          --size_;
        } else {
          kept.push_back(std::move(q));
        }
      }
      lane = std::move(kept);
      it = lane.empty() ? lanes_.erase(it) : std::next(it);
    }
    if (!out.empty()) publish_depth();
    return out;
  }

  /// Tenant ids with queued work, ascending.
  std::vector<int> tenants() const {
    std::vector<int> out;
    out.reserve(lanes_.size());
    for (const auto& [t, lane] : lanes_) {
      if (!lane.empty()) out.push_back(t);
    }
    return out;
  }

  /// The tenant id the next pop_fair would serve after `after` (test and
  /// batcher hook; wraps past the largest id).
  int next_tenant_after(int after) const {
    PGB_ASSERT(size_ > 0, "admission queue: no tenants queued");
    auto it = lanes_.upper_bound(after);
    if (it == lanes_.end()) it = lanes_.begin();
    return it->first;
  }

 private:
  void publish_depth() {
    if (mx_ != nullptr) {
      mx_->gauge("service.queue.depth").set(static_cast<double>(size_));
    }
  }

  std::size_t depth_;
  obs::MetricsRegistry* mx_;
  std::map<int, std::deque<PendingQuery>> lanes_;
  std::size_t size_ = 0;
  int cursor_ = -1;  ///< last-served tenant id (round-robin position)
};

}  // namespace pgb
