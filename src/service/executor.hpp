// Batch executor: turns one formed batch into per-query results.
//
// BFS and SSSP batches run through the batched state machines
// (bfs_batch / sssp_batch), whose per-level frontier exchange is the
// fused multi-frontier SpMSpV — one comm schedule priced and paid per
// level for the whole batch. Per-query results are byte-identical to
// solo runs (see core/spmspv_multi.hpp for why).
//
// When a fault plan is attached, BFS and SSSP batches run under the PR-5
// localized-rebuild driver (bfs_batch_with_rebuild /
// sssp_batch_with_rebuild): a locale killed mid-batch is rebuilt from
// replicas and the whole batch replays its last round bit-identical to
// the fault-free run. The subgraph kinds (ego-net, pagerank-on-subgraph)
// still run outside the rebuild driver — chaos traffic mixes should
// stick to the frontier kinds (their solo recovery wrappers exist in
// algo_recovery.hpp).
//
// The subgraph kinds bottom out on the same primitives: an ego-net is a
// depth-capped BFS's reached set; pagerank-on-subgraph extracts the ego
// set's induced subgraph (charged as a streaming scan of the owning
// blocks) and runs the resident pagerank on it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "algo/algo_recovery.hpp"
#include "algo/bfs.hpp"
#include "algo/pagerank.hpp"
#include "algo/sssp.hpp"
#include "service/queue.hpp"
#include "sparse/coo.hpp"

namespace pgb {

struct ExecOptions {
  SpmspvOptions spmspv;
  /// Optional fault plan: BFS and SSSP batches run under run_with_rebuild
  /// so a kill mid-batch recovers through the degraded path.
  FaultPlan* plan = nullptr;
  RebuildOptions rebuild;
  /// Optional recovery telemetry sink (accumulated across batches).
  RecoveryReport* report = nullptr;
};

/// Vertices within `depth` hops of `source` (the source included),
/// ascending — a depth-capped BFS's reached set.
inline std::vector<Index> ego_net(const DistCsr<double>& g, Index source,
                                  Index depth, const SpmspvOptions& opt) {
  BfsState<double> st = bfs_init(g, source);
  while (!st.done && st.level < depth) bfs_step(g, st, opt);
  std::vector<Index> out;
  for (Index v = 0; v < g.nrows(); ++v) {
    if (st.res.parent[static_cast<std::size_t>(v)] != Index{-1}) {
      out.push_back(v);
    }
  }
  return out;
}

/// Induced subgraph on `verts` (ascending global ids), with vertices
/// renumbered to [0, |verts|). Each locale scans its own blocks' rows
/// for members, charged as a streaming pass over the scanned entries.
inline DistCsr<double> induced_subgraph(const DistCsr<double>& g,
                                        const std::vector<Index>& verts) {
  auto& grid = g.grid();
  const Index m = static_cast<Index>(verts.size());
  std::vector<Index> pos(static_cast<std::size_t>(g.nrows()), Index{-1});
  for (Index i = 0; i < m; ++i) {
    pos[static_cast<std::size_t>(verts[static_cast<std::size_t>(i)])] = i;
  }
  Coo<double> coo(std::max<Index>(m, 1), std::max<Index>(m, 1));
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const auto& blk = g.block(ctx.locale());
    Index scanned = 0;
    for (Index r = blk.rlo; r < blk.rhi; ++r) {
      if (pos[static_cast<std::size_t>(r)] < 0) continue;
      auto cols = blk.csr.row_colids(r - blk.rlo);
      auto vals = blk.csr.row_values(r - blk.rlo);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        scanned++;
        const Index pc = pos[static_cast<std::size_t>(cols[k])];
        if (pc < 0) continue;
        coo.add(pos[static_cast<std::size_t>(r)], pc, vals[k]);
      }
    }
    CostVector c;
    c.add(CostKind::kRandAccess,
          static_cast<double>(blk.rhi - blk.rlo));  // membership probes
    c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(scanned));
    c.add(CostKind::kCpuOps, 4.0 * static_cast<double>(scanned));
    ctx.parallel_region(c);
  });
  return DistCsr<double>::from_coo(grid, coo);
}

/// Executes one batch (all entries same kind/snapshot for the batchable
/// kinds; subgraph kinds arrive solo). results[i] answers batch[i].
inline std::vector<QueryResult> execute_batch(
    const std::vector<PendingQuery>& batch, const ExecOptions& opt) {
  PGB_ASSERT(!batch.empty(), "executor: empty batch");
  const DistCsr<double>& g = *batch.front().snap.graph;
  std::vector<QueryResult> out(batch.size());
  const QueryKind kind = batch.front().spec.kind;

  // Bind each lane's per-query trace track on the session so the batched
  // state machines (which know lanes, not queries) can stamp per-level
  // spans on the right track. Contexts minted before a grid.reset() are
  // left unbound — their tracks died with the cleared session.
  obs::TraceSession* qtrace = g.grid().trace_session();
  bool bound = false;
  if (qtrace != nullptr) {
    std::vector<int> tracks(batch.size(), -1);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const QueryTraceContext& tc = batch[i].trace;
      if (tc.traced() && tc.grid_epoch == g.grid().epoch()) {
        tracks[i] = tc.track;
        bound = true;
      }
    }
    if (bound) qtrace->set_lane_tracks(std::move(tracks));
  }

  switch (kind) {
    case QueryKind::kBfs: {
      std::vector<Index> sources;
      sources.reserve(batch.size());
      for (const auto& q : batch) sources.push_back(q.spec.source);
      std::vector<BfsResult> res =
          opt.plan != nullptr
              ? bfs_batch_with_rebuild(g, sources, opt.spmspv, opt.plan,
                                       opt.rebuild, opt.report)
              : bfs_batch(g, sources, opt.spmspv);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        out[i].kind = kind;
        out[i].bfs = std::move(res[i]);
      }
      break;
    }
    case QueryKind::kSssp: {
      std::vector<Index> sources;
      sources.reserve(batch.size());
      for (const auto& q : batch) sources.push_back(q.spec.source);
      std::vector<SsspResult> res =
          opt.plan != nullptr
              ? sssp_batch_with_rebuild(g, sources, opt.spmspv, opt.plan,
                                        opt.rebuild, opt.report)
              : sssp_batch(g, sources, opt.spmspv);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        out[i].kind = kind;
        out[i].sssp = std::move(res[i]);
      }
      break;
    }
    case QueryKind::kEgoNet: {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        out[i].kind = kind;
        out[i].ego = ego_net(g, batch[i].spec.source, batch[i].spec.depth,
                             opt.spmspv);
      }
      break;
    }
    case QueryKind::kPagerankSubgraph: {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const QuerySpec& s = batch[i].spec;
        out[i].kind = kind;
        out[i].ego = ego_net(g, s.source, s.depth, opt.spmspv);
        DistCsr<double> sub = induced_subgraph(g, out[i].ego);
        PagerankResult pr =
            pagerank(sub, s.damping, s.tol, s.max_iters);
        pr.rank.resize(out[i].ego.size());  // drop the m=0 pad vertex
        out[i].rank = std::move(pr.rank);
      }
      break;
    }
  }
  if (bound) qtrace->clear_lane_tracks();
  return out;
}

}  // namespace pgb
