// Matrix Market (.mtx) I/O — the lingua franca of sparse-matrix
// exchange (SuiteSparse collection etc.), so the library can run on real
// graphs, not only generated ones.
//
// Supported on read: `matrix coordinate` with field real / integer /
// pattern (pattern entries get value 1) and symmetry general / symmetric
// (symmetric entries are mirrored; diagonal kept once). Comments (%) and
// blank lines are skipped. 1-based indices per the format.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dist_csr.hpp"

namespace pgb {

struct MatrixMarketInfo {
  Index nrows = 0;
  Index ncols = 0;
  Index entries = 0;     ///< entries as stored in the file
  bool symmetric = false;
  bool pattern = false;
};

/// Reads a Matrix Market stream into COO (values as double).
Coo<double> read_matrix_market(std::istream& in,
                               MatrixMarketInfo* info = nullptr);

/// Reads a Matrix Market file into a local CSR.
Csr<double> read_matrix_market_csr(const std::string& path,
                                   MatrixMarketInfo* info = nullptr);

/// Reads a Matrix Market file directly into a 2-D distributed CSR.
DistCsr<double> read_matrix_market_dist(LocaleGrid& grid,
                                        const std::string& path,
                                        MatrixMarketInfo* info = nullptr);

/// Writes a local CSR as `matrix coordinate real general`.
void write_matrix_market(std::ostream& out, const Csr<double>& m);
void write_matrix_market(const std::string& path, const Csr<double>& m);

}  // namespace pgb
