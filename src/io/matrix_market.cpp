#include "io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace pgb {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Reads the next non-comment, non-blank line; returns false at EOF.
bool next_data_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i == line.size() || line[i] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

Coo<double> read_matrix_market(std::istream& in, MatrixMarketInfo* info) {
  std::string line;
  PGB_REQUIRE(std::getline(in, line), "matrix market: empty input");
  std::istringstream header(lower(line));
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  PGB_REQUIRE(banner == "%%matrixmarket",
              "matrix market: missing %%MatrixMarket banner");
  PGB_REQUIRE(object == "matrix", "matrix market: only 'matrix' supported");
  PGB_REQUIRE(format == "coordinate",
              "matrix market: only 'coordinate' (sparse) supported");
  PGB_REQUIRE(field == "real" || field == "integer" || field == "pattern",
              "matrix market: field must be real/integer/pattern");
  PGB_REQUIRE(symmetry == "general" || symmetry == "symmetric",
              "matrix market: symmetry must be general/symmetric");
  const bool pattern = field == "pattern";
  const bool symmetric = symmetry == "symmetric";

  PGB_REQUIRE(next_data_line(in, line), "matrix market: missing size line");
  std::istringstream size(line);
  Index nrows = 0, ncols = 0, entries = 0;
  size >> nrows >> ncols >> entries;
  PGB_REQUIRE(!size.fail() && nrows >= 0 && ncols >= 0 && entries >= 0,
              "matrix market: malformed size line");

  if (info) {
    *info = MatrixMarketInfo{.nrows = nrows,
                             .ncols = ncols,
                             .entries = entries,
                             .symmetric = symmetric,
                             .pattern = pattern};
  }

  Coo<double> coo(nrows, ncols);
  coo.reserve(static_cast<std::size_t>(symmetric ? 2 * entries : entries));
  for (Index e = 0; e < entries; ++e) {
    PGB_REQUIRE(next_data_line(in, line),
                "matrix market: truncated entry list");
    std::istringstream entry(line);
    Index r = 0, c = 0;
    double v = 1.0;
    entry >> r >> c;
    if (!pattern) entry >> v;
    PGB_REQUIRE(!entry.fail(), "matrix market: malformed entry line");
    PGB_REQUIRE(r >= 1 && r <= nrows && c >= 1 && c <= ncols,
                "matrix market: entry index out of bounds");
    coo.add(r - 1, c - 1, v);
    if (symmetric && r != c) coo.add(c - 1, r - 1, v);
  }
  return coo;
}

Csr<double> read_matrix_market_csr(const std::string& path,
                                   MatrixMarketInfo* info) {
  std::ifstream in(path);
  PGB_REQUIRE(in.good(), "matrix market: cannot open " + path);
  return read_matrix_market(in, info).to_csr(
      [](double a, double b) { return a + b; });
}

DistCsr<double> read_matrix_market_dist(LocaleGrid& grid,
                                        const std::string& path,
                                        MatrixMarketInfo* info) {
  std::ifstream in(path);
  PGB_REQUIRE(in.good(), "matrix market: cannot open " + path);
  auto coo = read_matrix_market(in, info);
  return DistCsr<double>::from_coo(grid, coo);
}

void write_matrix_market(std::ostream& out, const Csr<double>& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.nrows() << " " << m.ncols() << " " << m.nnz() << "\n";
  for (Index r = 0; r < m.nrows(); ++r) {
    auto cols = m.row_colids(r);
    auto vals = m.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (r + 1) << " " << (cols[k] + 1) << " " << vals[k] << "\n";
    }
  }
}

void write_matrix_market(const std::string& path, const Csr<double>& m) {
  std::ofstream out(path);
  PGB_REQUIRE(out.good(), "matrix market: cannot open " + path);
  write_matrix_market(out, m);
  PGB_REQUIRE(out.good(), "matrix market: write failed for " + path);
}

}  // namespace pgb
