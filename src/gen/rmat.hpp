// R-MAT (recursive matrix) power-law graph generator, used by the example
// applications (BFS, connected components) for more realistic skewed-degree
// graphs than Erdős–Rényi.
#pragma once

#include <cstdint>

#include "runtime/locale_grid.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dist_csr.hpp"

namespace pgb {

struct RmatParams {
  int scale = 14;          ///< n = 2^scale vertices
  Index edge_factor = 16;  ///< ~edge_factor * n directed edges (pre-dedup)
  double a = 0.57, b = 0.19, c = 0.19;  ///< corner probabilities (d = 1-a-b-c)
  bool symmetric = true;   ///< also add the reverse of every edge
  std::uint64_t seed = 1;
};

/// Edge list as COO with unit values; duplicates removed, self-loops kept
/// out.
Coo<std::int64_t> rmat_coo(const RmatParams& p);

/// Local CSR adjacency matrix.
Csr<std::int64_t> rmat_csr(const RmatParams& p);

/// 2-D distributed adjacency matrix.
DistCsr<std::int64_t> rmat_dist(LocaleGrid& grid, const RmatParams& p);

}  // namespace pgb
