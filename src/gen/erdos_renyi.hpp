// Erdős–Rényi G(n, d/n) sparse matrix generator (paper Section II-A):
// every edge present independently with probability p = d/n, so each row
// holds Poisson(d)-many nonzeros uniformly spread over the columns.
//
// Rows are generated independently from (seed, row), so a 2-D distributed
// matrix can be built block-by-block with bit-identical structure to the
// local build — distributed and shared-memory benches see the same matrix.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/locale_grid.hpp"
#include "sparse/csr.hpp"
#include "sparse/dist_csr.hpp"
#include "util/rng.hpp"

namespace pgb {

/// Sorted distinct column ids of one ER row. Count ~ Poisson(d), capped
/// at n.
std::vector<Index> er_row_columns(Index n, double d, std::uint64_t seed,
                                  Index row);

/// Local CSR with all values T(1) (graph adjacency semantics).
template <typename T>
Csr<T> erdos_renyi_csr(Index n, double d, std::uint64_t seed) {
  std::vector<Index> rowptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Index> colids;
  colids.reserve(static_cast<std::size_t>(d * static_cast<double>(n) * 1.1) +
                 16);
  for (Index r = 0; r < n; ++r) {
    auto cols = er_row_columns(n, d, seed, r);
    colids.insert(colids.end(), cols.begin(), cols.end());
    rowptr[static_cast<std::size_t>(r) + 1] =
        static_cast<Index>(colids.size());
  }
  std::vector<T> vals(colids.size(), T(1));
  return Csr<T>::from_parts(n, n, std::move(rowptr), std::move(colids),
                            std::move(vals));
}

/// 2-D block-distributed ER matrix; block (R, C) regenerates its rows from
/// the same per-row streams and keeps only its column range.
template <typename T>
DistCsr<T> erdos_renyi_dist(LocaleGrid& grid, Index n, double d,
                            std::uint64_t seed) {
  DistCsr<T> m(grid, n, n);
  for (int l = 0; l < grid.num_locales(); ++l) {
    auto& b = m.block(l);
    std::vector<Index> rowptr(static_cast<std::size_t>(b.rhi - b.rlo) + 1, 0);
    std::vector<Index> colids;
    for (Index r = b.rlo; r < b.rhi; ++r) {
      auto cols = er_row_columns(n, d, seed, r);
      for (Index c : cols) {
        if (c >= b.clo && c < b.chi) colids.push_back(c);
      }
      rowptr[static_cast<std::size_t>(r - b.rlo) + 1] =
          static_cast<Index>(colids.size());
    }
    std::vector<T> vals(colids.size(), T(1));
    b.csr = Csr<T>::from_parts(b.rhi - b.rlo, n, std::move(rowptr),
                               std::move(colids), std::move(vals));
  }
  return m;
}

}  // namespace pgb
