#include "gen/random_vec.hpp"

#include "util/error.hpp"

namespace pgb {

std::vector<Index> sample_sorted_indices(Index capacity, Index nnz,
                                         std::uint64_t seed) {
  PGB_REQUIRE(nnz >= 0 && nnz <= capacity,
              "nnz must be within [0, capacity]");
  std::vector<Index> idx;
  idx.reserve(static_cast<std::size_t>(nnz));
  Xoshiro256 rng(seed);
  // Selection sampling: include i with probability (needed / remaining).
  Index needed = nnz;
  for (Index i = 0; i < capacity && needed > 0; ++i) {
    const Index remaining = capacity - i;
    if (rng.next_below(static_cast<std::uint64_t>(remaining)) <
        static_cast<std::uint64_t>(needed)) {
      idx.push_back(i);
      --needed;
    }
  }
  PGB_ASSERT(static_cast<Index>(idx.size()) == nnz,
             "selection sampling must produce exactly nnz indices");
  return idx;
}

DistDenseVec<std::uint8_t> random_dist_bool_vec(LocaleGrid& grid, Index n,
                                                double p_true,
                                                std::uint64_t seed) {
  DistDenseVec<std::uint8_t> y(grid, n, 0);
  for (int l = 0; l < grid.num_locales(); ++l) {
    Xoshiro256 rng(seed, static_cast<std::uint64_t>(l) + 100);
    auto& lv = y.local(l);
    for (Index i = lv.lo(); i < lv.hi(); ++i) {
      lv[i] = rng.next_bernoulli(p_true) ? 1 : 0;
    }
  }
  return y;
}

}  // namespace pgb
