#include "gen/rmat.hpp"

#include "util/rng.hpp"

namespace pgb {

Coo<std::int64_t> rmat_coo(const RmatParams& p) {
  const Index n = Index{1} << p.scale;
  const Index m = p.edge_factor * n;
  Coo<std::int64_t> coo(n, n);
  coo.reserve(static_cast<std::size_t>(p.symmetric ? 2 * m : m));
  Xoshiro256 rng(p.seed);
  for (Index e = 0; e < m; ++e) {
    Index r = 0, c = 0;
    for (int level = 0; level < p.scale; ++level) {
      const double u = rng.next_double();
      r <<= 1;
      c <<= 1;
      if (u < p.a) {
        // top-left quadrant: nothing to add
      } else if (u < p.a + p.b) {
        c |= 1;
      } else if (u < p.a + p.b + p.c) {
        r |= 1;
      } else {
        r |= 1;
        c |= 1;
      }
    }
    if (r == c) continue;  // drop self-loops
    coo.add(r, c, 1);
    if (p.symmetric) coo.add(c, r, 1);
  }
  return coo;
}

Csr<std::int64_t> rmat_csr(const RmatParams& p) {
  // Duplicate edges collapse to a single unit entry.
  return rmat_coo(p).to_csr([](std::int64_t, std::int64_t) {
    return std::int64_t{1};
  });
}

DistCsr<std::int64_t> rmat_dist(LocaleGrid& grid, const RmatParams& p) {
  // Route the deduplicated global matrix into blocks so the distributed
  // matrix matches rmat_csr exactly.
  Csr<std::int64_t> local = rmat_csr(p);
  Coo<std::int64_t> coo(local.nrows(), local.ncols());
  coo.reserve(static_cast<std::size_t>(local.nnz()));
  for (Index r = 0; r < local.nrows(); ++r) {
    auto cols = local.row_colids(r);
    auto vals = local.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.add(r, cols[k], vals[k]);
    }
  }
  return DistCsr<std::int64_t>::from_coo(grid, coo);
}

}  // namespace pgb
