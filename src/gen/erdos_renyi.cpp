#include "gen/erdos_renyi.hpp"

#include <algorithm>
#include <cmath>

namespace pgb {

namespace {

/// Knuth's Poisson sampler (d is small; ~d iterations).
Index poisson(Xoshiro256& rng, double d) {
  const double limit = std::exp(-d);
  double prod = rng.next_double();
  Index k = 0;
  while (prod > limit) {
    prod *= rng.next_double();
    ++k;
  }
  return k;
}

}  // namespace

std::vector<Index> er_row_columns(Index n, double d, std::uint64_t seed,
                                  Index row) {
  Xoshiro256 rng(seed, static_cast<std::uint64_t>(row));
  Index k = std::min(poisson(rng, d), n);
  std::vector<Index> cols;
  cols.reserve(static_cast<std::size_t>(k));
  // Draw distinct columns; k << n so rejection terminates fast.
  while (static_cast<Index>(cols.size()) < k) {
    const Index c = static_cast<Index>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    auto it = std::lower_bound(cols.begin(), cols.end(), c);
    if (it == cols.end() || *it != c) cols.insert(it, c);
  }
  return cols;
}

}  // namespace pgb
