// Random sparse/dense vector generators.
//
// The paper's vector experiments use "randomly generated" sparse vectors
// with a given nonzero count (Figs 1-5) or a given density f = nnz/capacity
// (the SpMSpV figures). random_sparse_vec draws an *exact* number of
// distinct indices with selection sampling (Knuth's Algorithm S), which
// emits them already sorted — matching Chapel's sorted sparse domains —
// and is fully deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/locale_grid.hpp"
#include "sparse/dist_dense_vec.hpp"
#include "sparse/dist_sparse_vec.hpp"
#include "sparse/sparse_vec.hpp"
#include "util/rng.hpp"

namespace pgb {

/// Exactly nnz distinct sorted indices drawn uniformly from [0, capacity).
std::vector<Index> sample_sorted_indices(Index capacity, Index nnz,
                                         std::uint64_t seed);

/// Local sparse vector with exactly nnz nonzeros; values are small
/// integers derived from the value seed (deterministic).
template <typename T>
SparseVec<T> random_sparse_vec(Index capacity, Index nnz,
                               std::uint64_t seed) {
  auto idx = sample_sorted_indices(capacity, nnz, seed);
  Xoshiro256 rng(seed, /*shard=*/1);
  std::vector<T> vals(idx.size());
  for (auto& v : vals) v = static_cast<T>(rng.next_below(1 << 20));
  return SparseVec<T>::from_sorted(capacity, std::move(idx),
                                   std::move(vals));
}

/// Distributed sparse vector with exactly nnz nonzeros over all locales.
template <typename T>
DistSparseVec<T> random_dist_sparse_vec(LocaleGrid& grid, Index capacity,
                                        Index nnz, std::uint64_t seed) {
  auto idx = sample_sorted_indices(capacity, nnz, seed);
  Xoshiro256 rng(seed, /*shard=*/1);
  std::vector<T> vals(idx.size());
  for (auto& v : vals) v = static_cast<T>(rng.next_below(1 << 20));
  return DistSparseVec<T>::from_sorted(grid, capacity, idx, vals);
}

/// Distributed dense Boolean vector; each entry true with probability p.
/// (The paper's eWiseMult experiment uses a Boolean y that keeps about
/// half of x's entries.)
DistDenseVec<std::uint8_t> random_dist_bool_vec(LocaleGrid& grid, Index n,
                                                double p_true,
                                                std::uint64_t seed);

}  // namespace pgb
