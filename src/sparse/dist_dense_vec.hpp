// Block-distributed dense vector (Chapel Block-dmapped dense array).
#pragma once

#include <vector>

#include "runtime/dist.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dense_vec.hpp"

namespace pgb {

template <typename T>
class DistDenseVec {
 public:
  DistDenseVec(LocaleGrid& grid, Index n, T init = T{})
      : grid_(&grid), dist_(n, grid.num_locales()) {
    loc_.reserve(grid.num_locales());
    for (int l = 0; l < grid.num_locales(); ++l) {
      loc_.emplace_back(dist_.lo(l), dist_.hi(l), init);
    }
  }

  LocaleGrid& grid() const { return *grid_; }
  const BlockDist1D& dist() const { return dist_; }
  Index size() const { return dist_.n(); }

  DenseVec<T>& local(int l) { return loc_[l]; }
  const DenseVec<T>& local(int l) const { return loc_[l]; }

  int owner(Index i) const { return dist_.owner(i); }

  /// Direct global element access (test/setup only; charges nothing).
  const T& at(Index i) const { return loc_[owner(i)][i]; }
  T& at(Index i) { return loc_[owner(i)][i]; }

  void fill(const T& v) {
    for (auto& lv : loc_) lv.fill(v);
  }

 private:
  LocaleGrid* grid_;
  BlockDist1D dist_;
  std::vector<DenseVec<T>> loc_;
};

}  // namespace pgb
