// Compressed Sparse Columns. GraphBLAS implementations keep both
// orientations so vxm and mxv each have a cheap kernel; Chapel (and the
// paper) only support CSR, which is why this repo's distributed mxv pays
// for an explicit transpose. The local CSC here provides the
// transpose-free column-wise kernel for comparison (see
// spmspv_columnwise in core/spmspv_cw.hpp).
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace pgb {

template <typename T>
class Csc {
 public:
  Csc() : colptr_(1, 0) {}

  Csc(Index nrows, Index ncols)
      : nrows_(nrows), ncols_(ncols), colptr_(ncols + 1, 0) {
    PGB_REQUIRE(nrows >= 0 && ncols >= 0, "negative matrix dimension");
  }

  static Csc from_parts(Index nrows, Index ncols, std::vector<Index> colptr,
                        std::vector<Index> rowids, std::vector<T> vals) {
    PGB_REQUIRE(colptr.size() == static_cast<std::size_t>(ncols) + 1,
                "colptr length must be ncols+1");
    PGB_REQUIRE(rowids.size() == vals.size(), "rowids/vals length mismatch");
    PGB_REQUIRE(!colptr.empty() &&
                    colptr.back() == static_cast<Index>(rowids.size()),
                "colptr does not cover all nonzeros");
    Csc m(nrows, ncols);
    m.colptr_ = std::move(colptr);
    m.rowids_ = std::move(rowids);
    m.vals_ = std::move(vals);
    PGB_ASSERT(m.check_invariants(), "CSC invariants violated");
    return m;
  }

  /// Converts from CSR (counting sort over columns; row ids within each
  /// column come out sorted because CSR rows are visited in order).
  static Csc from_csr(const Csr<T>& a) {
    std::vector<Index> colptr(static_cast<std::size_t>(a.ncols()) + 1, 0);
    for (Index c : a.colids()) ++colptr[static_cast<std::size_t>(c) + 1];
    for (Index c = 0; c < a.ncols(); ++c) {
      colptr[static_cast<std::size_t>(c) + 1] +=
          colptr[static_cast<std::size_t>(c)];
    }
    std::vector<Index> rowids(static_cast<std::size_t>(a.nnz()));
    std::vector<T> vals(static_cast<std::size_t>(a.nnz()));
    std::vector<Index> cursor(colptr.begin(), colptr.end() - 1);
    for (Index r = 0; r < a.nrows(); ++r) {
      auto cols = a.row_colids(r);
      auto rvals = a.row_values(r);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const Index pos = cursor[static_cast<std::size_t>(cols[k])]++;
        rowids[static_cast<std::size_t>(pos)] = r;
        vals[static_cast<std::size_t>(pos)] = rvals[k];
      }
    }
    return from_parts(a.nrows(), a.ncols(), std::move(colptr),
                      std::move(rowids), std::move(vals));
  }

  /// Converts back to CSR.
  Csr<T> to_csr() const {
    std::vector<Index> rowptr(static_cast<std::size_t>(nrows_) + 1, 0);
    for (Index r : rowids_) ++rowptr[static_cast<std::size_t>(r) + 1];
    for (Index r = 0; r < nrows_; ++r) {
      rowptr[static_cast<std::size_t>(r) + 1] +=
          rowptr[static_cast<std::size_t>(r)];
    }
    std::vector<Index> colids(rowids_.size());
    std::vector<T> vals(rowids_.size());
    std::vector<Index> cursor(rowptr.begin(), rowptr.end() - 1);
    for (Index c = 0; c < ncols_; ++c) {
      for (Index k = colptr_[static_cast<std::size_t>(c)];
           k < colptr_[static_cast<std::size_t>(c) + 1]; ++k) {
        const Index r = rowids_[static_cast<std::size_t>(k)];
        const Index pos = cursor[static_cast<std::size_t>(r)]++;
        colids[static_cast<std::size_t>(pos)] = c;
        vals[static_cast<std::size_t>(pos)] = vals_[static_cast<std::size_t>(k)];
      }
    }
    return Csr<T>::from_parts(nrows_, ncols_, std::move(rowptr),
                              std::move(colids), std::move(vals));
  }

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  Index nnz() const { return static_cast<Index>(rowids_.size()); }
  Index col_nnz(Index c) const {
    return colptr_[static_cast<std::size_t>(c) + 1] -
           colptr_[static_cast<std::size_t>(c)];
  }

  std::span<const Index> col_rowids(Index c) const {
    return std::span<const Index>(rowids_).subspan(
        static_cast<std::size_t>(colptr_[static_cast<std::size_t>(c)]),
        static_cast<std::size_t>(col_nnz(c)));
  }
  std::span<const T> col_values(Index c) const {
    return std::span<const T>(vals_).subspan(
        static_cast<std::size_t>(colptr_[static_cast<std::size_t>(c)]),
        static_cast<std::size_t>(col_nnz(c)));
  }

  bool check_invariants() const {
    if (colptr_.size() != static_cast<std::size_t>(ncols_) + 1) return false;
    if (colptr_[0] != 0) return false;
    for (Index c = 0; c < ncols_; ++c) {
      if (colptr_[static_cast<std::size_t>(c) + 1] <
          colptr_[static_cast<std::size_t>(c)]) {
        return false;
      }
      for (Index k = colptr_[static_cast<std::size_t>(c)] + 1;
           k < colptr_[static_cast<std::size_t>(c) + 1]; ++k) {
        if (rowids_[static_cast<std::size_t>(k - 1)] >=
            rowids_[static_cast<std::size_t>(k)]) {
          return false;
        }
      }
      for (Index k = colptr_[static_cast<std::size_t>(c)];
           k < colptr_[static_cast<std::size_t>(c) + 1]; ++k) {
        if (rowids_[static_cast<std::size_t>(k)] < 0 ||
            rowids_[static_cast<std::size_t>(k)] >= nrows_) {
          return false;
        }
      }
    }
    return colptr_[static_cast<std::size_t>(ncols_)] == nnz();
  }

 private:
  Index nrows_ = 0;
  Index ncols_ = 0;
  std::vector<Index> colptr_;
  std::vector<Index> rowids_;
  std::vector<T> vals_;
};

}  // namespace pgb
