// Compressed Sparse Rows — the only matrix format the paper considers
// (the one Chapel's sparse block layout supports). rowptr has length
// nrows+1; colids within each row are kept sorted, as Chapel does.
#pragma once

#include <span>
#include <vector>

#include "runtime/dist.hpp"
#include "util/error.hpp"
#include "util/sorting.hpp"

namespace pgb {

template <typename T>
class Csr {
 public:
  Csr() : rowptr_(1, 0) {}

  Csr(Index nrows, Index ncols)
      : nrows_(nrows), ncols_(ncols), rowptr_(nrows + 1, 0) {
    PGB_REQUIRE(nrows >= 0 && ncols >= 0, "negative matrix dimension");
  }

  /// Builds from prepared arrays. colids must be sorted within each row.
  static Csr from_parts(Index nrows, Index ncols, std::vector<Index> rowptr,
                        std::vector<Index> colids, std::vector<T> vals) {
    PGB_REQUIRE(rowptr.size() == static_cast<std::size_t>(nrows) + 1,
                "rowptr length must be nrows+1");
    PGB_REQUIRE(colids.size() == vals.size(), "colids/vals length mismatch");
    PGB_REQUIRE(!rowptr.empty() && rowptr.back() ==
                    static_cast<Index>(colids.size()),
                "rowptr does not cover all nonzeros");
    Csr m(nrows, ncols);
    m.rowptr_ = std::move(rowptr);
    m.colids_ = std::move(colids);
    m.vals_ = std::move(vals);
    PGB_ASSERT(m.check_invariants(), "CSR invariants violated");
    return m;
  }

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  Index nnz() const { return static_cast<Index>(colids_.size()); }

  /// Start of row r's nonzeros in colids/vals.
  Index row_start(Index r) const { return rowptr_[r]; }
  /// One past the end of row r's nonzeros.
  Index row_end(Index r) const { return rowptr_[r + 1]; }
  Index row_nnz(Index r) const { return rowptr_[r + 1] - rowptr_[r]; }

  std::span<const Index> rowptr() const { return rowptr_; }
  std::span<const Index> colids() const { return colids_; }
  std::span<const T> values() const { return vals_; }
  std::span<T> values() { return vals_; }

  std::span<const Index> row_colids(Index r) const {
    return std::span<const Index>(colids_).subspan(
        static_cast<std::size_t>(rowptr_[r]),
        static_cast<std::size_t>(row_nnz(r)));
  }
  std::span<const T> row_values(Index r) const {
    return std::span<const T>(vals_).subspan(
        static_cast<std::size_t>(rowptr_[r]),
        static_cast<std::size_t>(row_nnz(r)));
  }

  /// Value at (r, c) or nullptr — binary search within the row.
  const T* find(Index r, Index c) const {
    auto row = row_colids(r);
    auto it = std::lower_bound(row.begin(), row.end(), c);
    if (it == row.end() || *it != c) return nullptr;
    return &vals_[static_cast<std::size_t>(rowptr_[r] + (it - row.begin()))];
  }

  bool check_invariants() const {
    if (rowptr_.size() != static_cast<std::size_t>(nrows_) + 1) return false;
    if (rowptr_[0] != 0) return false;
    for (Index r = 0; r < nrows_; ++r) {
      if (rowptr_[r + 1] < rowptr_[r]) return false;
      for (Index k = rowptr_[r] + 1; k < rowptr_[r + 1]; ++k) {
        if (colids_[k - 1] >= colids_[k]) return false;
      }
      for (Index k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
        if (colids_[k] < 0 || colids_[k] >= ncols_) return false;
      }
    }
    return rowptr_[nrows_] == nnz();
  }

 private:
  Index nrows_ = 0;
  Index ncols_ = 0;
  std::vector<Index> rowptr_;
  std::vector<Index> colids_;
  std::vector<T> vals_;
};

}  // namespace pgb
