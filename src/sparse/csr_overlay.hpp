// Read-through overlay of one CSR block: the base CSR stays immutable
// (it is the published, replicated epoch state) while pending edge
// mutations accumulate in a per-row delta map. Reads merge the two —
// a delta entry wins over the base, a tombstone hides it — and
// materialize() folds everything into a fresh CSR for the next epoch
// publish. This is the streaming-ingest counterpart of the paper's
// static DistCsr: queries keep the pinned base, the overlay carries the
// not-yet-compacted epoch deltas.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "sparse/csr.hpp"

namespace pgb {

template <typename T>
class CsrOverlay {
 public:
  /// An overlay over `base` (kept by reference: the caller owns the base
  /// block and must outlive the overlay). Rows are the block's local
  /// rows; columns stay global, like the block itself.
  explicit CsrOverlay(const Csr<T>* base)
      : base_(base),
        rows_(static_cast<std::size_t>(base->nrows())) {}

  /// Points the overlay at a new base block (after compaction swapped
  /// the base) and drops every pending delta.
  void rebase(const Csr<T>* base) {
    base_ = base;
    rows_.assign(static_cast<std::size_t>(base->nrows()), {});
    pending_ = 0;
  }

  /// Applies one mutation: insert/overwrite when `insert`, tombstone
  /// otherwise. Last write wins within the overlay.
  void apply(Index local_row, Index col, const T& val, bool insert) {
    PGB_ASSERT(local_row >= 0 && local_row < base_->nrows(),
               "overlay: local row out of range");
    auto& row = rows_[static_cast<std::size_t>(local_row)];
    auto [it, fresh] = row.emplace(col, std::make_pair(val, insert));
    if (!fresh) it->second = std::make_pair(val, insert);
    if (fresh) ++pending_;
  }

  /// Pending delta entries (distinct overlaid coordinates).
  std::int64_t pending() const { return pending_; }

  const Csr<T>& base() const { return *base_; }

  /// Read-through of one row: the base row merged with the row's deltas,
  /// columns ascending; tombstoned entries dropped.
  void row(Index local_row, std::vector<Index>* cols,
           std::vector<T>* vals) const {
    cols->clear();
    vals->clear();
    const auto bc = base_->row_colids(local_row);
    const auto bv = base_->row_values(local_row);
    const auto& dm = rows_[static_cast<std::size_t>(local_row)];
    std::size_t i = 0;
    auto it = dm.begin();
    while (i < bc.size() || it != dm.end()) {
      if (it == dm.end() || (i < bc.size() && bc[i] < it->first)) {
        cols->push_back(bc[i]);
        vals->push_back(bv[i]);
        ++i;
      } else {
        const bool shadows = i < bc.size() && bc[i] == it->first;
        if (it->second.second) {  // live insert/overwrite
          cols->push_back(it->first);
          vals->push_back(it->second.first);
        }
        if (shadows) ++i;  // tombstone or overwrite hides the base entry
        ++it;
      }
    }
  }

  /// Read-through point lookup: nullptr when absent (or tombstoned).
  const T* find(Index local_row, Index col) const {
    const auto& dm = rows_[static_cast<std::size_t>(local_row)];
    const auto it = dm.find(col);
    if (it != dm.end()) {
      return it->second.second ? &it->second.first : nullptr;
    }
    return base_->find(local_row, col);
  }

  /// Folds base + deltas into a fresh CSR (the next epoch's block).
  /// Also returns via `touched` (nullable) how many base entries were
  /// re-read — the modeled read-through cost of the merge.
  Csr<T> materialize(std::int64_t* touched = nullptr) const {
    const Index nr = base_->nrows();
    std::vector<Index> rowptr(static_cast<std::size_t>(nr) + 1, 0);
    std::vector<Index> colids;
    std::vector<T> vals;
    colids.reserve(static_cast<std::size_t>(base_->nnz()));
    vals.reserve(static_cast<std::size_t>(base_->nnz()));
    std::vector<Index> rc;
    std::vector<T> rv;
    std::int64_t scanned = 0;
    for (Index r = 0; r < nr; ++r) {
      if (rows_[static_cast<std::size_t>(r)].empty()) {
        // Clean row: copied straight through, no merge.
        const auto bc = base_->row_colids(r);
        const auto bv = base_->row_values(r);
        colids.insert(colids.end(), bc.begin(), bc.end());
        vals.insert(vals.end(), bv.begin(), bv.end());
      } else {
        row(r, &rc, &rv);
        scanned += base_->row_nnz(r) +
                   static_cast<std::int64_t>(
                       rows_[static_cast<std::size_t>(r)].size());
        colids.insert(colids.end(), rc.begin(), rc.end());
        vals.insert(vals.end(), rv.begin(), rv.end());
      }
      rowptr[static_cast<std::size_t>(r) + 1] =
          static_cast<Index>(colids.size());
    }
    if (touched != nullptr) *touched = scanned;
    return Csr<T>::from_parts(nr, base_->ncols(), std::move(rowptr),
                              std::move(colids), std::move(vals));
  }

 private:
  const Csr<T>* base_;
  /// Per local row: column -> (value, alive). alive=false is a tombstone.
  std::vector<std::map<Index, std::pair<T, bool>>> rows_;
  std::int64_t pending_ = 0;
};

}  // namespace pgb
