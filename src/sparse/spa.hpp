// The sparse accumulator (SPA) of Gilbert, Moler & Schreiber, as used by
// the paper's SpMSpV (Fig 6 / Listing 7): a dense value array, a dense
// "isthere" flag array, and a list of the indices whose flag is set.
// reset() only clears the touched flags, so a SPA can be reused across
// iterations (e.g. every BFS level) at O(nnz) cost.
#pragma once

#include <vector>

#include "runtime/dist.hpp"
#include "util/bitvector.hpp"
#include "util/error.hpp"

namespace pgb {

template <typename T>
class Spa {
 public:
  Spa() = default;
  /// Covers the index range [lo, hi).
  Spa(Index lo, Index hi)
      : lo_(lo),
        vals_(static_cast<std::size_t>(hi - lo)),
        isthere_(hi - lo) {
    PGB_REQUIRE(hi >= lo, "invalid SPA range");
  }

  Index lo() const { return lo_; }
  Index hi() const { return lo_ + static_cast<Index>(vals_.size()); }
  Index nnz() const { return static_cast<Index>(nzinds_.size()); }

  /// Accumulate v at global index i with `add`; first touch records i.
  template <typename AddOp>
  void accumulate(Index i, const T& v, AddOp add) {
    const Index off = i - lo_;
    if (isthere_.test_and_set(off)) {
      nzinds_.push_back(i);
      vals_[static_cast<std::size_t>(off)] = v;
    } else {
      vals_[static_cast<std::size_t>(off)] =
          add(vals_[static_cast<std::size_t>(off)], v);
    }
  }

  /// Paper Listing 7 semantics: only the first write to an index sticks
  /// ("only keeping the first index"). Returns true if this was the first.
  bool set_if_absent(Index i, const T& v) {
    const Index off = i - lo_;
    if (isthere_.test_and_set(off)) {
      nzinds_.push_back(i);
      vals_[static_cast<std::size_t>(off)] = v;
      return true;
    }
    return false;
  }

  bool has(Index i) const { return isthere_.get(i - lo_); }
  const T& value(Index i) const {
    return vals_[static_cast<std::size_t>(i - lo_)];
  }

  /// Unsorted list of touched indices (global).
  std::vector<Index>& nzinds() { return nzinds_; }
  const std::vector<Index>& nzinds() const { return nzinds_; }

  /// Clears only the touched entries.
  void reset() {
    for (Index i : nzinds_) isthere_.clear(i - lo_);
    nzinds_.clear();
  }

 private:
  Index lo_ = 0;
  std::vector<T> vals_;
  BitVector isthere_;
  std::vector<Index> nzinds_;
};

}  // namespace pgb
