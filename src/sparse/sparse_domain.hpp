// SparseDomain: the analogue of a Chapel sparse subdomain — a sorted,
// duplicate-free set of indices. Chapel stores sparse-domain indices
// sorted in an array (paper Section II-A); membership/position queries are
// binary searches, which is exactly the log-time cost the paper blames for
// Assign1's slowness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "runtime/dist.hpp"
#include "util/error.hpp"
#include "util/sorting.hpp"

namespace pgb {

class SparseDomain {
 public:
  SparseDomain() = default;

  /// Builds from indices that are already sorted and unique.
  static SparseDomain from_sorted(std::vector<Index> sorted) {
    PGB_ASSERT(is_sorted_ascending(sorted), "indices must be sorted");
    SparseDomain d;
    d.idx_ = std::move(sorted);
    return d;
  }

  /// Builds from arbitrary indices (sorts and deduplicates).
  static SparseDomain from_unsorted(std::vector<Index> idx) {
    std::sort(idx.begin(), idx.end());
    idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
    return from_sorted(std::move(idx));
  }

  Index size() const { return static_cast<Index>(idx_.size()); }
  bool empty() const { return idx_.empty(); }
  void clear() { idx_.clear(); }

  Index operator[](Index pos) const { return idx_[pos]; }
  std::span<const Index> indices() const { return idx_; }

  /// Position of global index i, or -1. Binary search: O(log nnz), the
  /// cost Assign1 pays per element.
  Index find(Index i) const {
    auto it = std::lower_bound(idx_.begin(), idx_.end(), i);
    if (it == idx_.end() || *it != i) return -1;
    return static_cast<Index>(it - idx_.begin());
  }

  bool contains(Index i) const { return find(i) >= 0; }

  /// Chapel's `dom += otherDom` for bulk index addition. Input must be
  /// sorted & unique; merges into the existing set.
  void add_sorted(std::span<const Index> sorted) {
    PGB_ASSERT(is_sorted_ascending(sorted), "bulk add requires sorted input");
    if (idx_.empty()) {
      idx_.assign(sorted.begin(), sorted.end());
      return;
    }
    idx_ = sorted_union(idx_, sorted);
  }

  bool operator==(const SparseDomain& o) const { return idx_ == o.idx_; }

 private:
  std::vector<Index> idx_;
};

}  // namespace pgb
