// Coordinate-format triples and CSR construction. Generators emit COO;
// Coo::to_csr sorts (row-major, columns ascending), combines duplicates
// with a binary op, and builds the CSR.
#pragma once

#include <algorithm>
#include <vector>

#include "sparse/csr.hpp"

namespace pgb {

template <typename T>
struct Triple {
  Index row;
  Index col;
  T val;
};

template <typename T>
class Coo {
 public:
  Coo(Index nrows, Index ncols) : nrows_(nrows), ncols_(ncols) {}

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  Index nnz() const { return static_cast<Index>(t_.size()); }

  void add(Index r, Index c, T v) {
    PGB_ASSERT(r >= 0 && r < nrows_ && c >= 0 && c < ncols_,
               "triple out of range");
    t_.push_back(Triple<T>{r, c, std::move(v)});
  }

  void reserve(std::size_t n) { t_.reserve(n); }
  const std::vector<Triple<T>>& triples() const { return t_; }

  /// Builds a CSR; duplicate coordinates are combined with `combine`
  /// (defaults to keeping the last value).
  template <typename Combine>
  Csr<T> to_csr(Combine combine) const {
    std::vector<Triple<T>> s = t_;
    std::stable_sort(s.begin(), s.end(),
                     [](const Triple<T>& a, const Triple<T>& b) {
                       return a.row != b.row ? a.row < b.row : a.col < b.col;
                     });
    // Combine duplicates in place.
    std::size_t w = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (w > 0 && s[w - 1].row == s[i].row && s[w - 1].col == s[i].col) {
        s[w - 1].val = combine(s[w - 1].val, s[i].val);
      } else {
        s[w++] = s[i];
      }
    }
    s.resize(w);

    std::vector<Index> rowptr(nrows_ + 1, 0);
    for (const auto& tr : s) ++rowptr[tr.row + 1];
    for (Index r = 0; r < nrows_; ++r) rowptr[r + 1] += rowptr[r];
    std::vector<Index> colids(w);
    std::vector<T> vals(w);
    for (std::size_t i = 0; i < w; ++i) {
      colids[i] = s[i].col;
      vals[i] = s[i].val;
    }
    return Csr<T>::from_parts(nrows_, ncols_, std::move(rowptr),
                              std::move(colids), std::move(vals));
  }

  Csr<T> to_csr() const {
    return to_csr([](const T&, const T& b) { return b; });
  }

 private:
  Index nrows_;
  Index ncols_;
  std::vector<Triple<T>> t_;
};

}  // namespace pgb
