// 2-D block-distributed sparse matrix in CSR format — the paper's matrix
// representation (Section II-B): locales form a prows x pcols grid; locale
// (r, c) owns the CSR block covering row-block r and column-block c. Rows
// within a block are locally indexed; column ids stay global (the block
// knows its column range).
#pragma once

#include <vector>

#include "runtime/dist.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace pgb {

template <typename T>
class DistCsr {
 public:
  struct Block {
    Index rlo = 0, rhi = 0;  ///< global row range [rlo, rhi)
    Index clo = 0, chi = 0;  ///< global column range [clo, chi)
    Csr<T> csr;              ///< rows local (0-based), colids global
  };

  DistCsr(LocaleGrid& grid, Index nrows, Index ncols)
      : grid_(&grid), dist_(nrows, ncols, grid.rows(), grid.cols()) {
    blocks_.resize(grid.num_locales());
    for (int l = 0; l < grid.num_locales(); ++l) {
      auto& b = blocks_[l];
      b.rlo = dist_.rowd().lo(dist_.prow_of(l));
      b.rhi = dist_.rowd().hi(dist_.prow_of(l));
      b.clo = dist_.cold().lo(dist_.pcol_of(l));
      b.chi = dist_.cold().hi(dist_.pcol_of(l));
      b.csr = Csr<T>(b.rhi - b.rlo, ncols);
    }
  }

  /// Scatters a global COO into the per-locale blocks; duplicate
  /// coordinates are combined with `combine` (default: keep the last).
  template <typename Combine>
  static DistCsr from_coo(LocaleGrid& grid, const Coo<T>& coo,
                          Combine combine) {
    DistCsr m(grid, coo.nrows(), coo.ncols());
    std::vector<Coo<T>> parts;
    parts.reserve(grid.num_locales());
    for (int l = 0; l < grid.num_locales(); ++l) {
      const auto& b = m.blocks_[l];
      parts.emplace_back(b.rhi - b.rlo, coo.ncols());
    }
    for (const auto& t : coo.triples()) {
      const int l = m.dist_.locale_of(t.row, t.col);
      parts[l].add(t.row - m.blocks_[l].rlo, t.col, t.val);
    }
    for (int l = 0; l < grid.num_locales(); ++l) {
      m.blocks_[l].csr = parts[l].to_csr(combine);
    }
    return m;
  }

  static DistCsr from_coo(LocaleGrid& grid, const Coo<T>& coo) {
    return from_coo(grid, coo, [](const T&, const T& b) { return b; });
  }

  LocaleGrid& grid() const { return *grid_; }
  const BlockDist2D& dist() const { return dist_; }
  Index nrows() const { return dist_.rowd().n(); }
  Index ncols() const { return dist_.cold().n(); }

  Index nnz() const {
    Index s = 0;
    for (const auto& b : blocks_) s += b.csr.nnz();
    return s;
  }

  Block& block(int l) { return blocks_[l]; }
  const Block& block(int l) const { return blocks_[l]; }

  /// Gathers into one local CSR (test/debug only).
  Csr<T> to_local() const {
    Coo<T> coo(nrows(), ncols());
    coo.reserve(static_cast<std::size_t>(nnz()));
    for (const auto& b : blocks_) {
      for (Index lr = 0; lr < b.csr.nrows(); ++lr) {
        auto cols = b.csr.row_colids(lr);
        auto vals = b.csr.row_values(lr);
        for (std::size_t k = 0; k < cols.size(); ++k) {
          coo.add(b.rlo + lr, cols[k], vals[k]);
        }
      }
    }
    return coo.to_csr();
  }

  bool check_invariants() const {
    for (const auto& b : blocks_) {
      if (!b.csr.check_invariants()) return false;
      for (Index c : b.csr.colids()) {
        if (c < b.clo || c >= b.chi) return false;
      }
    }
    return true;
  }

 private:
  LocaleGrid* grid_;
  BlockDist2D dist_;
  std::vector<Block> blocks_;
};

}  // namespace pgb
