// Block-distributed sparse vector: the analogue of a Chapel sparse array
// over a Block-dmapped 1-D domain (paper Listing 1). Each locale owns the
// indices in its block range and stores them as a local SparseVec
// (sorted indices + values), matching SparseBlockDom/SparseBlockArr's
// locDoms/locArr split that the paper manipulates directly.
#pragma once

#include <numeric>
#include <vector>

#include "runtime/dist.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/sparse_vec.hpp"

namespace pgb {

template <typename T>
class DistSparseVec {
 public:
  /// An empty vector with capacity n distributed over all of grid's
  /// locales.
  DistSparseVec(LocaleGrid& grid, Index n)
      : grid_(&grid), dist_(n, grid.num_locales()) {
    loc_.resize(grid.num_locales());
    for (int l = 0; l < grid.num_locales(); ++l) {
      loc_[l] = SparseVec<T>(dist_.local_size(l));
    }
  }

  /// Partitions globally sorted (idx, vals) across locales.
  static DistSparseVec from_sorted(LocaleGrid& grid, Index n,
                                   const std::vector<Index>& idx,
                                   const std::vector<T>& vals) {
    PGB_REQUIRE(idx.size() == vals.size(), "index/value length mismatch");
    PGB_ASSERT(is_sorted_ascending(idx), "indices must be sorted");
    DistSparseVec v(grid, n);
    std::size_t k = 0;
    for (int l = 0; l < grid.num_locales(); ++l) {
      const Index hi = v.dist_.hi(l);
      std::vector<Index> li;
      std::vector<T> lv;
      while (k < idx.size() && idx[k] < hi) {
        li.push_back(idx[k]);
        lv.push_back(vals[k]);
        ++k;
      }
      v.loc_[l] = SparseVec<T>::from_sorted(v.dist_.local_size(l),
                                            std::move(li), std::move(lv));
    }
    PGB_REQUIRE(k == idx.size(), "index out of range for capacity n");
    return v;
  }

  LocaleGrid& grid() const { return *grid_; }
  const BlockDist1D& dist() const { return dist_; }
  Index capacity() const { return dist_.n(); }

  Index nnz() const {
    Index s = 0;
    for (const auto& lv : loc_) s += lv.nnz();
    return s;
  }

  SparseVec<T>& local(int l) { return loc_[l]; }
  const SparseVec<T>& local(int l) const { return loc_[l]; }

  /// Owner locale of global index i.
  int owner(Index i) const { return dist_.owner(i); }

  /// Gathers the whole vector into one local SparseVec (test/debug only;
  /// charges nothing).
  SparseVec<T> to_local() const {
    std::vector<Index> idx;
    std::vector<T> vals;
    for (const auto& lv : loc_) {
      idx.insert(idx.end(), lv.domain().indices().begin(),
                 lv.domain().indices().end());
      vals.insert(vals.end(), lv.values().begin(), lv.values().end());
    }
    return SparseVec<T>::from_sorted(capacity(), std::move(idx),
                                     std::move(vals));
  }

  /// Structural + distribution invariants (used by property tests).
  bool check_invariants() const {
    for (int l = 0; l < static_cast<int>(loc_.size()); ++l) {
      const auto& d = loc_[l].domain();
      if (loc_[l].nnz() != static_cast<Index>(loc_[l].values().size())) {
        return false;
      }
      for (Index p = 0; p < d.size(); ++p) {
        const Index i = d[p];
        if (i < dist_.lo(l) || i >= dist_.hi(l)) return false;
        if (p > 0 && d[p - 1] >= i) return false;
      }
    }
    return true;
  }

 private:
  LocaleGrid* grid_;
  BlockDist1D dist_;
  std::vector<SparseVec<T>> loc_;
};

}  // namespace pgb
