// A local dense vector over an index range [lo, hi).
#pragma once

#include <span>
#include <vector>

#include "runtime/dist.hpp"
#include "util/error.hpp"

namespace pgb {

template <typename T>
class DenseVec {
 public:
  DenseVec() = default;
  DenseVec(Index lo, Index hi, T init = T{})
      : lo_(lo), data_(static_cast<std::size_t>(hi - lo), init) {
    PGB_REQUIRE(hi >= lo, "invalid range");
  }

  Index lo() const { return lo_; }
  Index hi() const { return lo_ + static_cast<Index>(data_.size()); }
  Index size() const { return static_cast<Index>(data_.size()); }

  const T& operator[](Index i) const { return data_[static_cast<std::size_t>(i - lo_)]; }
  T& operator[](Index i) { return data_[static_cast<std::size_t>(i - lo_)]; }

  std::span<const T> raw() const { return data_; }
  std::span<T> raw() { return data_; }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  Index lo_ = 0;
  std::vector<T> data_;
};

}  // namespace pgb
