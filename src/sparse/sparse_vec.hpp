// A local (single-locale) sparse vector: a SparseDomain plus a value per
// domain index, mirroring Chapel's sparse-domain/array split.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "sparse/sparse_domain.hpp"
#include "util/error.hpp"

namespace pgb {

template <typename T>
class SparseVec {
 public:
  SparseVec() = default;
  explicit SparseVec(Index capacity) : capacity_(capacity) {}

  /// Builds from parallel (sorted-unique index, value) arrays.
  static SparseVec from_sorted(Index capacity, std::vector<Index> idx,
                               std::vector<T> vals) {
    PGB_REQUIRE(idx.size() == vals.size(), "index/value length mismatch");
    SparseVec v(capacity);
    v.dom_ = SparseDomain::from_sorted(std::move(idx));
    v.vals_ = std::move(vals);
    return v;
  }

  static SparseVec from_unsorted(Index capacity, std::vector<Index> idx,
                                 std::vector<T> vals) {
    PGB_REQUIRE(idx.size() == vals.size(), "index/value length mismatch");
    sort_pairs_by_index(idx, vals);
    SparseVec v(capacity);
    v.dom_ = SparseDomain::from_sorted(std::move(idx));
    v.vals_ = std::move(vals);
    return v;
  }

  /// capacity(): the number of entries the vector can store (paper §II-A).
  Index capacity() const { return capacity_; }
  Index nnz() const { return dom_.size(); }

  const SparseDomain& domain() const { return dom_; }
  SparseDomain& domain() { return dom_; }

  std::span<const T> values() const { return vals_; }
  std::span<T> values() { return vals_; }

  /// Replaces the value array; must match the domain size.
  void set_values(std::vector<T> vals) {
    PGB_REQUIRE(static_cast<Index>(vals.size()) == dom_.size(),
                "value array must match domain size");
    vals_ = std::move(vals);
  }

  Index index_at(Index pos) const { return dom_[pos]; }
  const T& value_at(Index pos) const { return vals_[pos]; }
  T& value_at(Index pos) { return vals_[pos]; }

  /// Value at global index i via binary search; returns nullptr if absent.
  const T* find(Index i) const {
    const Index pos = dom_.find(i);
    return pos < 0 ? nullptr : &vals_[pos];
  }

  void clear() {
    dom_.clear();
    vals_.clear();
  }

  bool operator==(const SparseVec& o) const {
    return capacity_ == o.capacity_ && dom_ == o.dom_ && vals_ == o.vals_;
  }

  /// Cheap content tag: nnz, the end indices, and up to 64 evenly
  /// strided (index, value-bits) samples mixed into one 64-bit word.
  /// The inspector's replica cache uses it to detect a source block
  /// changing between waves without hashing the whole vector. A
  /// collision can only mis-model communication cost (a re-ship not
  /// charged) — reads always resolve against the live vector, so data
  /// can never be corrupted by one.
  std::uint64_t fingerprint() const {
    const Index n = nnz();
    std::uint64_t h =
        0x9e3779b97f4a7c15ull ^ static_cast<std::uint64_t>(n);
    auto mix = [&h](std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(static_cast<std::uint64_t>(capacity_));
    if (n == 0) return h;
    const Index stride = std::max<Index>(1, n / 64);
    for (Index p = 0; p < n; p += stride) {
      mix(static_cast<std::uint64_t>(dom_[p]));
      if constexpr (std::is_trivially_copyable_v<T>) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &vals_[p], std::min(sizeof(T), sizeof(bits)));
        mix(bits);
      }
    }
    mix(static_cast<std::uint64_t>(dom_[n - 1]));
    return h;
  }

 private:
  Index capacity_ = 0;
  SparseDomain dom_;
  std::vector<T> vals_;
};

}  // namespace pgb
