// Deterministic fault injection for the locale-grid runtime.
//
// The paper's central finding is that fine-grained remote access
// dominates distributed GraphBLAS cost; at production scale those same
// access patterns are also where real systems *fail*. Every modeled
// remote access in pgas-graphblas flows through one comm layer
// (LocaleCtx::remote_* and AggChannel::flush_*), so that layer is the
// seam where faults are injected and delivery guarantees live:
//
//   FaultSpec    a parsed schedule of injectable faults — message drop,
//                duplication, payload corruption (checksum-detectable),
//                transient peer stall, and permanent locale failure at a
//                chosen simulated time. One grammar serves the `pgb
//                --faults=` flag, the tests, and the chaos CI job.
//   FaultPlan    the spec bound to a seed: a deterministic stream of
//                per-transfer fate decisions (same spec + seed => the
//                same faults in the same places, bit for bit).
//   RetryPolicy  how the comm layer reacts: max attempts, ack timeout,
//                exponential backoff with jitter drawn from the plan's
//                RNG. Retries charge simulated time through the normal
//                network model, so a chaos trace shows where it went.
//
// Faults only perturb the *modeled* execution — charging, counters and
// the locale-failure schedule. The in-process data movement is
// unaffected (a "dropped" transfer is re-sent until delivered, a
// duplicate is deduplicated by sequence number), so any run without a
// locale kill is bit-identical to the fault-free run; kills are
// recovered through checkpoint/restart (fault/recovery.hpp).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace pgb {

enum class FaultKind {
  kDrop,       ///< message lost in flight (sender times out, re-sends)
  kDuplicate,  ///< message delivered twice (receiver drops the copy)
  kCorrupt,    ///< payload corrupted (checksum fails, receiver NAKs)
  kStall,      ///< transient peer stall: extra latency on one transfer
  kLocaleFail, ///< permanent locale death at a simulated time
};

const char* to_string(FaultKind k);

/// One clause of a fault spec.
struct FaultRule {
  FaultKind kind = FaultKind::kDrop;
  /// Per-transfer injection probability (message faults).
  double probability = 0.0;
  /// Restrict a message fault to transfers whose destination is this
  /// locale (-1 = any peer). For kLocaleFail: the victim locale.
  int locale = -1;
  /// kStall only: deterministic source targeting — every transfer *sent
  /// by* this locale stalls, no probability draw involved (-1 = off).
  /// This is how straggler tests pin the slow locale exactly.
  int src_locale = -1;
  /// kStall: latency added to the stalled transfer, in seconds.
  double stall_seconds = 0.0;
  /// kLocaleFail: simulated time of death, in seconds.
  double at_time = 0.0;
};

/// A parsed fault schedule. Grammar (one string, used verbatim by
/// `pgb --faults=`, the tests, and CI):
///
///   SPEC   := clause (';' clause)*
///   clause := KIND [':' key '=' value (',' key '=' value)*]
///   KIND   := drop | dup | corrupt | stall | kill
///
/// Keys per kind:
///   drop / dup / corrupt:  p=<prob in [0,1]>  [peer=<locale>]
///   stall:                 p=<prob> ms=<added latency in ms> [peer=<locale>]
///                        | locale=<src id> ms=<added latency in ms>
///                          (deterministic: every transfer *sent by* that
///                          locale stalls; p= and peer= are rejected)
///   kill:                  locale=<id> at=<simulated seconds>
///
/// Examples:  "drop:p=0.01"
///            "drop:p=0.02,peer=3;stall:p=0.001,ms=0.5"
///            "stall:locale=7,ms=0.5"
///            "corrupt:p=0.005;kill:locale=5,at=0.002"
struct FaultSpec {
  std::vector<FaultRule> rules;

  /// Parses the grammar above; throws InvalidArgument with a pointed
  /// message on malformed input.
  static FaultSpec parse(const std::string& spec);

  /// Canonical rendering (parses back to an equal spec).
  std::string to_string() const;
};

/// How the comm layer turns faults into delivery guarantees.
struct RetryPolicy {
  /// Total send attempts per logical transfer (first try included).
  int max_attempts = 4;
  /// Modeled ack timeout charged for an attempt that was dropped or
  /// whose peer is dead, in seconds.
  double timeout = 100e-6;
  /// Base backoff before the first retry, in seconds.
  double backoff = 20e-6;
  /// Backoff multiplier per further retry.
  double backoff_mult = 2.0;
  /// Fraction of each backoff randomized (drawn from the plan's RNG).
  double jitter = 0.5;

  /// Throws InvalidArgument on nonsensical values (max_attempts < 1,
  /// negative times).
  void validate() const;
};

/// Thrown when a permanently failed locale is detected (by the grid's
/// coforall dispatch). Recovery drivers catch it and restart from the
/// last checkpoint; without a driver it surfaces to the caller.
class LocaleFailed : public Error {
 public:
  LocaleFailed(int locale, double sim_time);
  int locale() const { return locale_; }
  double when() const { return sim_time_; }

 private:
  int locale_;
  double sim_time_;
};

/// Everything the comm layer needs to charge one logical transfer that
/// went through the fault plan: how many wire attempts it took, what was
/// injected, and the extra simulated time owed beyond the attempts
/// themselves.
struct DeliveryOutcome {
  int attempts = 1;        ///< wire sends, including the successful one
  int duplicates = 0;      ///< extra wire copies from kDuplicate
  int drops = 0;           ///< sampled in-flight losses
  int corrupts = 0;        ///< checksum-failed arrivals (NAK + re-send)
  int stalls = 0;          ///< transfers hit by a peer stall
  int timeouts = 0;        ///< attempts that waited out the ack timeout
  double stall_time = 0.0; ///< injected stall latency, seconds
  double wait_time = 0.0;  ///< ack timeouts + backoff waits, seconds
  bool delivered = true;   ///< false: attempts exhausted (peer dead)
};

/// A fault spec bound to a seed: the deterministic decision stream the
/// runtime consults. Attached to a LocaleGrid (not owned) with
/// grid.set_fault_plan(); a null plan means the entire fault path is one
/// branch-to-nothing.
class FaultPlan {
 public:
  FaultPlan(FaultSpec spec, std::uint64_t seed);

  const FaultSpec& spec() const { return spec_; }
  std::uint64_t seed() const { return seed_; }

  /// True when the spec contains any message fault (drop/dup/corrupt/
  /// stall) — lets the comm layer skip sampling entirely for kill-only
  /// plans.
  bool has_message_faults() const { return !message_rules_.empty(); }

  /// Samples the fate of one wire attempt from `src` to `peer`. Each
  /// call consumes RNG state; the sequence is a pure function of
  /// (spec, seed, call order).
  struct AttemptFate {
    bool drop = false;
    bool duplicate = false;
    bool corrupt = false;
    double stall = 0.0;
  };
  AttemptFate attempt_fate(int src, int peer);

  /// Permanent-failure schedule. A locale is down once the querying
  /// clock passes its kill time, until a recovery driver replaces it
  /// (mark_recovered).
  bool is_down(int locale, double sim_now) const;
  double kill_time(int locale) const;  ///< +inf when never killed
  void mark_recovered(int locale);

  /// Uniform [0,1) from the plan's RNG (retry backoff jitter), so chaos
  /// timing shares the one deterministic stream.
  double uniform() { return rng_.next_double(); }

  /// Number of fate samples drawn so far (determinism checks in tests).
  std::int64_t decisions() const { return decisions_; }

 private:
  FaultSpec spec_;
  std::uint64_t seed_;
  Xoshiro256 rng_;
  std::int64_t decisions_ = 0;
  std::vector<FaultRule> message_rules_;
  struct Kill {
    int locale;
    double at_time;
    bool recovered;
  };
  std::vector<Kill> kills_;
};

/// Runs one logical transfer src -> peer through the plan under `rp`:
/// samples attempt fates until one is delivered (or attempts are
/// exhausted — the only way that happens is a dead peer or a drop storm)
/// and accumulates the retry/backoff time owed. `sim_now` anchors the
/// dead-peer check. Shared by LocaleCtx::remote_* and AggChannel.
DeliveryOutcome plan_delivery(FaultPlan& plan, const RetryPolicy& rp,
                              int src, int peer, double sim_now);

}  // namespace pgb
