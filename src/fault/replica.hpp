// In-memory block replication for degraded-mode recovery (header-only,
// like checkpoint.hpp; sits above runtime/sparse in the layering).
//
// Where checkpoint.hpp models a *stable store* (every locale ships its
// blocks out at burst-buffer bandwidth, restores are global), the
// ReplicaStore keeps each locale's registered state blocks mirrored in
// the *memory of a deterministic buddy locale* (or XOR-folded into a
// parity group for lower memory overhead). Replicas are kept fresh by
// incremental update-log shipping: at every phase boundary the staged
// snapshot is diffed chunk-by-chunk against the last flushed copy and
// only dirty chunks travel, through the normal LocaleCtx::transfer()
// path, so replication traffic is charged to the simulated clocks,
// rides any attached fault plan, and shows up in traces
// (`replica.bytes`, `replica.flushes`, `replica.flush` spans).
//
// The replica bytes are real: the mirror (or parity fold) holds
// physically distinct buffers, a buddy rebuild reads them back, and a
// parity rebuild recomputes the lost block as parity XOR surviving
// members — checksum-verified. Tests corrupt the primary copy of a
// "dead" locale and prove the rebuilt state still comes out right.
//
// Failure tolerance: one locale at a time (the classic single-fault
// model). A second failure is survivable as long as it does not take
// out the buddy (or a parity-group peer) of an unrecovered locale —
// the rebuild driver rethrows LocaleFailed when it does.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/checkpoint.hpp"
#include "obs/span.hpp"
#include "runtime/locale_grid.hpp"
#include "util/error.hpp"

namespace pgb {

enum class ReplicaScheme {
  kBuddy,   ///< full mirror at a deterministic buddy locale (2x memory)
  kParity,  ///< RAID-5-style XOR fold per parity group (n/G extra memory)
};

inline const char* to_string(ReplicaScheme s) {
  return s == ReplicaScheme::kBuddy ? "buddy" : "parity";
}

struct ReplicaOptions {
  ReplicaScheme scheme = ReplicaScheme::kBuddy;
  /// Locales per XOR parity group (kParity). Must satisfy
  /// 2 <= parity_group < num_locales so a group's parity can live
  /// outside the group (otherwise one death loses data + parity).
  int parity_group = 4;
  /// Dirty-tracking granularity of the incremental update log: a flush
  /// ships only the chunks whose bytes changed since the last flush,
  /// plus a small per-chunk header.
  std::int64_t chunk_bytes = 4096;
  /// Modeled per-chunk shipping header (offset + length + checksum).
  std::int64_t chunk_header_bytes = 16;
  /// Unchanging bytes (the matrix blocks, grid total) replicated once at
  /// store construction; a rebuilt locale re-pulls its 1/n share from
  /// its buddy instead of the stable store.
  std::int64_t static_bytes = 0;
};

/// Deterministic buddy assignment: the locale half the ring away, so
/// buddy pairs straddle node boundaries under every locales_per_node
/// packing and a single node loss cannot take a locale and its buddy.
inline int replica_buddy_of(int logical, int num_locales) {
  const int stride = num_locales / 2 > 0 ? num_locales / 2 : 1;
  return (logical + stride) % num_locales;
}

class ReplicaStore {
 public:
  ReplicaStore(LocaleGrid& grid, ReplicaOptions opt)
      : grid_(grid), opt_(opt) {
    PGB_REQUIRE(grid.num_locales() >= 2,
                "replica: need at least two locales to replicate");
    PGB_REQUIRE(opt_.chunk_bytes >= 1, "replica: chunk_bytes must be >= 1");
    PGB_REQUIRE(opt_.chunk_header_bytes >= 0,
                "replica: chunk_header_bytes must be >= 0");
    if (opt_.scheme == ReplicaScheme::kParity) {
      PGB_REQUIRE(opt_.parity_group >= 2,
                  "replica: parity_group must be >= 2");
      PGB_REQUIRE(opt_.parity_group < grid.num_locales(),
                  "replica: parity_group must be < num_locales (a group's "
                  "parity must live outside the group)");
    }
    if (opt_.static_bytes > 0) {
      // One-time replication of the static state: each locale ships its
      // share to wherever its dynamic replicas will live.
      PGB_TRACE_SPAN(grid_, "replica.setup",
                     {{"bytes", std::to_string(opt_.static_bytes)}});
      const std::int64_t share =
          opt_.static_bytes / grid_.num_locales();
      grid_.coforall_locales([&](LocaleCtx& ctx) {
        ctx.remote_bulk(replica_target(ctx.locale()), share);
      });
      shipped_bytes_ += opt_.static_bytes;
      grid_.metrics().counter("replica.bytes").inc(opt_.static_bytes);
    }
  }

  const ReplicaOptions& options() const { return opt_; }

  int buddy_of(int logical) const {
    return replica_buddy_of(logical, grid_.num_locales());
  }

  /// Where logical `l`'s replica lives: its buddy (kBuddy) or its parity
  /// group's holder (kParity) — a *logical* locale, so placement follows
  /// the membership mapping automatically after a remap.
  int replica_target(int l) const {
    if (opt_.scheme == ReplicaScheme::kBuddy) return buddy_of(l);
    return parity_holder(group_of(l));
  }

  int group_of(int l) const { return l / opt_.parity_group; }

  /// Parity of group g lives at the first member of the next group
  /// (ring order), which the parity_group < n precondition keeps outside
  /// group g — so one death never costs a group both a member block and
  /// its parity.
  int parity_holder(int g) const {
    return ((g + 1) * opt_.parity_group) % grid_.num_locales();
  }

  /// The scratch snapshot the loop serializes its state into each round
  /// (via RecoverableLoop::save) before calling flush().
  Checkpoint& staging() { return staging_; }

  /// Round of the last *completed* flush (-1: none yet). A flush
  /// interrupted by a locale kill never promotes, so rebuilds resume
  /// from the previous consistent round.
  std::int64_t protected_round() const { return protected_round_; }

  /// Total replica bytes shipped so far (setup + incremental flushes).
  std::int64_t shipped_bytes() const { return shipped_bytes_; }

  /// Phase-boundary flush: diff staging vs the last flushed copy chunk
  /// by chunk, ship dirty chunks (buddy) or XOR deltas (parity) to the
  /// replica holders through the comm layer, then atomically promote
  /// staging to the new protected snapshot. If a kill interrupts the
  /// shipping coforall, nothing is promoted: the store still holds the
  /// previous consistent round.
  void flush(std::int64_t round) {
    PGB_REQUIRE(round > protected_round_,
                "replica: flush rounds must increase");
    const int n = grid_.num_locales();
    std::vector<std::int64_t> scanned(static_cast<std::size_t>(n), 0);
    std::vector<std::int64_t> dirty(static_cast<std::size_t>(n), 0);
    std::int64_t dirty_chunks = 0;
    for (const CheckpointEntry& e : staging_.entries()) {
      const CheckpointEntry* old = primary_.find(e.key);
      for (const CheckpointBlock& blk : e.blocks) {
        const std::vector<unsigned char>* old_bytes = nullptr;
        if (old != nullptr) {
          for (const CheckpointBlock& ob : old->blocks) {
            if (ob.locale == blk.locale) {
              old_bytes = &ob.bytes;
              break;
            }
          }
        }
        scanned[static_cast<std::size_t>(blk.locale)] +=
            static_cast<std::int64_t>(blk.bytes.size());
        const std::int64_t d = dirty_bytes(old_bytes, blk.bytes);
        if (d > 0) {
          dirty[static_cast<std::size_t>(blk.locale)] += d;
          dirty_chunks += (d + opt_.chunk_bytes - 1) / opt_.chunk_bytes;
        }
      }
    }
    std::int64_t total_dirty = 0;
    for (const std::int64_t d : dirty) total_dirty += d;
    PGB_TRACE_SPAN(grid_, "replica.flush",
                   {{"round", std::to_string(round)},
                    {"bytes", std::to_string(total_dirty)}});
    // Ship first, promote after: this coforall is where a pending kill
    // surfaces, and an aborted flush must leave the previous round's
    // replicas untouched.
    const double serialize_bw = grid_.model().node.bw_core;
    grid_.coforall_locales([&](LocaleCtx& ctx) {
      const int l = ctx.locale();
      // Serialize + diff scan streams the staged bytes through memory.
      ctx.clock().advance(
          static_cast<double>(scanned[static_cast<std::size_t>(l)]) /
          serialize_bw);
      const std::int64_t d = dirty[static_cast<std::size_t>(l)];
      if (d > 0) ctx.remote_bulk(replica_target(l), d);
    });
    if (opt_.scheme == ReplicaScheme::kParity) fold_parity();
    mirror_ = staging_;
    primary_ = staging_;
    primary_.round = round;
    protected_round_ = round;
    shipped_bytes_ += total_dirty;
    grid_.metrics().counter("replica.flushes").inc();
    grid_.metrics().counter("replica.bytes").inc(total_dirty);
    grid_.metrics().counter("replica.chunks").inc(dirty_chunks);
  }

  /// Localized rebuild after logical locale `logical`'s host died:
  /// survivors reload their state from their own last-flushed copy
  /// (a local memory read), while `logical`'s blocks are re-materialized
  /// from replica bytes — the buddy's mirror, or parity XOR the
  /// surviving group members — and pulled over the wire by whichever
  /// host now carries `logical`. Returns the bytes restored for the
  /// dead locale; the full snapshot to load is in restored().
  std::int64_t rebuild(int logical) {
    PGB_REQUIRE(protected_round_ >= 0, "replica: nothing flushed yet");
    PGB_REQUIRE(logical >= 0 && logical < grid_.num_locales(),
                "replica: bad logical locale");
    std::int64_t lost_bytes = 0;
    restored_ = primary_;
    if (opt_.scheme == ReplicaScheme::kBuddy) {
      for (const CheckpointEntry& e : mirror_.entries()) {
        CheckpointEntry* dst = restored_.find_mutable(e.key);
        PGB_REQUIRE(dst != nullptr, "replica: mirror/primary key mismatch");
        for (const CheckpointBlock& blk : e.blocks) {
          if (blk.locale != logical) continue;
          if (!blk.valid()) {
            throw Error("replica: buddy copy of '" + e.key +
                        "' block for locale " + std::to_string(logical) +
                        " is corrupt");
          }
          for (CheckpointBlock& d : dst->blocks) {
            if (d.locale == logical) d = blk;
          }
          lost_bytes += static_cast<std::int64_t>(blk.bytes.size());
        }
      }
    } else {
      lost_bytes = reconstruct_from_parity(logical);
    }
    const std::int64_t static_share =
        opt_.static_bytes / grid_.num_locales();
    PGB_TRACE_SPAN(grid_, "recovery.rebuild",
                   {{"locale", std::to_string(logical)},
                    {"scheme", to_string(opt_.scheme)},
                    {"round", std::to_string(protected_round_)},
                    {"bytes", std::to_string(lost_bytes)}});
    grid_.metrics().counter("recovery.rebuilds").inc();
    grid_.metrics().counter("replica.restored_bytes")
        .inc(lost_bytes + static_share);
    const double bw = grid_.model().node.bw_core;
    grid_.coforall_locales([&](LocaleCtx& ctx) {
      const int l = ctx.locale();
      // Every locale deserializes its snapshot out of local memory.
      ctx.clock().advance(
          static_cast<double>(restored_.locale_bytes(l)) / bw);
      if (l != logical) return;
      if (opt_.scheme == ReplicaScheme::kBuddy) {
        // Pull the mirror (and the static share) from the buddy. After
        // a degraded-mode remap the buddy host *is* this host, so the
        // pull is a free local read — exactly the point of degrading
        // onto the buddy.
        ctx.remote_bulk(buddy_of(l), lost_bytes + static_share);
      } else {
        // Pull every surviving member's block and the parity fold, then
        // XOR-stream them back together.
        const int g = group_of(l);
        const int lo = g * opt_.parity_group;
        const int hi = std::min(lo + opt_.parity_group, grid_.num_locales());
        for (int m = lo; m < hi; ++m) {
          if (m != l) ctx.remote_bulk(m, primary_.locale_bytes(m));
        }
        ctx.remote_bulk(parity_holder(g), lost_bytes);
        ctx.clock().advance(
            static_cast<double>(lost_bytes) *
            static_cast<double>(hi - lo) / bw);
        ctx.remote_bulk(buddy_of(l), static_share);
      }
    });
    return lost_bytes + static_share;
  }

  /// The snapshot rebuilt by rebuild(): load the loop state from it.
  const Checkpoint& restored() const { return restored_; }

  /// The last-flushed primary copies. Exposed so tests can corrupt a
  /// dead locale's primary block and prove rebuilds really read the
  /// replica bytes, not this copy.
  Checkpoint& primary_for_test() { return primary_; }

 private:
  /// Bytes a flush must ship for this block: dirty chunks (content
  /// compare against the previous copy) plus a header per dirty chunk.
  /// A missing or resized previous copy dirties the affected chunks.
  std::int64_t dirty_bytes(const std::vector<unsigned char>* old_bytes,
                           const std::vector<unsigned char>& now) const {
    const std::int64_t cb = opt_.chunk_bytes;
    const std::int64_t n = static_cast<std::int64_t>(now.size());
    const std::int64_t on =
        old_bytes == nullptr ? 0
                             : static_cast<std::int64_t>(old_bytes->size());
    std::int64_t out = 0;
    for (std::int64_t off = 0; off < std::max(n, on); off += cb) {
      const std::int64_t len = std::min(cb, n - off);
      const std::int64_t olen = std::min(cb, on - off);
      const bool same =
          len == olen && len > 0 &&
          std::memcmp(now.data() + off, old_bytes->data() + off,
                      static_cast<std::size_t>(len)) == 0;
      if (!same) out += std::max<std::int64_t>(len, 0) +
                        opt_.chunk_header_bytes;
    }
    return out;
  }

  /// Folds the staged bytes into the per-group parity buffers:
  /// parity ^= old ^ new over every changed byte (growing the fold to
  /// the widest member block seen).
  void fold_parity() {
    for (const CheckpointEntry& e : staging_.entries()) {
      auto& groups = parity_[e.key];
      const int ngroups =
          (grid_.num_locales() + opt_.parity_group - 1) / opt_.parity_group;
      groups.resize(static_cast<std::size_t>(ngroups));
      const CheckpointEntry* old = primary_.find(e.key);
      for (const CheckpointBlock& blk : e.blocks) {
        const std::vector<unsigned char>* old_bytes = nullptr;
        if (old != nullptr) {
          for (const CheckpointBlock& ob : old->blocks) {
            if (ob.locale == blk.locale) {
              old_bytes = &ob.bytes;
              break;
            }
          }
        }
        auto& fold = groups[static_cast<std::size_t>(group_of(blk.locale))];
        const std::size_t need =
            std::max(fold.size(),
                     std::max(blk.bytes.size(),
                              old_bytes == nullptr ? 0 : old_bytes->size()));
        fold.resize(need, 0);
        for (std::size_t i = 0; i < need; ++i) {
          const unsigned char o =
              (old_bytes != nullptr && i < old_bytes->size())
                  ? (*old_bytes)[i]
                  : 0;
          const unsigned char nw = i < blk.bytes.size() ? blk.bytes[i] : 0;
          fold[i] = static_cast<unsigned char>(fold[i] ^ o ^ nw);
        }
      }
    }
  }

  /// Reconstructs `logical`'s blocks as parity XOR the surviving group
  /// members' primary copies; checksum-verified against the manifest.
  std::int64_t reconstruct_from_parity(int logical) {
    std::int64_t lost = 0;
    const int g = group_of(logical);
    for (const CheckpointEntry& e : primary_.entries()) {
      const auto pit = parity_.find(e.key);
      PGB_REQUIRE(pit != parity_.end(),
                  "replica: no parity fold for '" + e.key + "'");
      const std::vector<unsigned char>& fold =
          pit->second[static_cast<std::size_t>(g)];
      CheckpointEntry* dst = restored_.find_mutable(e.key);
      for (CheckpointBlock& d : dst->blocks) {
        if (d.locale != logical) continue;
        std::vector<unsigned char> bytes = fold;
        for (const CheckpointBlock& m : e.blocks) {
          if (m.locale == logical || group_of(m.locale) != g) continue;
          for (std::size_t i = 0; i < m.bytes.size(); ++i) {
            bytes[i] = static_cast<unsigned char>(bytes[i] ^ m.bytes[i]);
          }
        }
        bytes.resize(d.bytes.size());  // manifest length (tiny metadata,
                                       // modeled as replicated everywhere)
        const std::uint64_t sum = fnv1a(bytes.data(), bytes.size());
        if (sum != d.checksum) {
          throw Error("replica: parity reconstruction of '" + e.key +
                      "' block for locale " + std::to_string(logical) +
                      " failed its checksum");
        }
        d.bytes = std::move(bytes);
        lost += static_cast<std::int64_t>(d.bytes.size());
      }
    }
    return lost;
  }

  LocaleGrid& grid_;
  ReplicaOptions opt_;
  Checkpoint staging_;   ///< scratch the loop serializes into each round
  Checkpoint primary_;   ///< each locale's own last-flushed copy
  Checkpoint mirror_;    ///< the buddy-held copies (physically distinct)
  Checkpoint restored_;  ///< assembled by rebuild()
  std::unordered_map<std::string, std::vector<std::vector<unsigned char>>>
      parity_;  ///< per entry key, per group: XOR fold of member blocks
  std::int64_t protected_round_ = -1;
  std::int64_t shipped_bytes_ = 0;
};

}  // namespace pgb
