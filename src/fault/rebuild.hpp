// Localized-rebuild recovery driver: the degraded-mode counterpart of
// run_with_recovery (recovery.hpp).
//
// Where checkpoint rollback restores *every* locale from the stable
// store and replays up to checkpoint_every rounds, this driver keeps
// the loop state replicated in locale memory (fault/replica.hpp),
// flushed incrementally at every round boundary. On LocaleFailed only
// the dead locale's blocks are rebuilt — from its buddy mirror or its
// parity group — onto either:
//
//   kSpare:    a spare that adopts the dead locale's physical id (the
//              fault plan marks it recovered, as rollback does), or
//   kDegraded: the surviving N-1 locales — the dead locale's *logical*
//              id is remapped onto its buddy's host (a membership-epoch
//              bump that every comm helper, distribution view, and clock
//              charge consults), and the run keeps going co-hosted.
//
// Either way the run resumes from the last flushed round — at a flush
// per round, at most the interrupted round is replayed. Re-executed
// rounds recompute over bit-identical inputs, so results stay bit-for-
// bit equal to the fault-free run; only modeled time and traffic differ.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "fault/fault.hpp"
#include "fault/recovery.hpp"
#include "fault/replica.hpp"
#include "runtime/locale_grid.hpp"

namespace pgb {

enum class RebuildMode {
  kSpare,     ///< a spare adopts the dead physical locale's identity
  kDegraded,  ///< remap the dead logical locale onto its buddy's host
};

inline const char* to_string(RebuildMode m) {
  return m == RebuildMode::kSpare ? "spare-rebuild" : "degraded";
}

struct RebuildOptions {
  RebuildMode mode = RebuildMode::kDegraded;
  /// Replication scheme + cadence knobs (see fault/replica.hpp).
  ReplicaOptions replica;
  /// Delivery guarantees installed on the grid for the run.
  RetryPolicy retry;
  /// Give up (rethrow LocaleFailed) after this many rebuilds.
  int max_failures = 4;
  /// Leave a degraded-mode remap installed on exit instead of restoring
  /// identity membership. A long-lived caller that drives *many* loops
  /// under one plan (the serving front end) sets this so that after a
  /// kill every later loop starts on the surviving hosts directly —
  /// no logical locale maps to the dead host anymore, so no re-failure
  /// and no per-loop re-rebuild.
  bool keep_membership = false;
  /// Called after a successful remap/adopt, before the loop resumes,
  /// with the dead logical locale. Lets state that lives *outside* the
  /// driver's ReplicaStore — the ingest delta log and its base mirror —
  /// restore itself from its own replicas as part of the same rebuild.
  std::function<void(int logical)> on_rebuild;
};

/// Runs `loop` to completion under `plan`, surviving locale kills by
/// localized rebuild from in-memory replicas. Installs `plan` and
/// `opt.retry` on the grid for the duration and restores the previous
/// plan, retry policy, and membership mapping on exit (a degraded run
/// leaves the grid remapped only while it executes, unless
/// opt.keep_membership asks for the remap to outlive the call). `plan`
/// may be null
/// — the loop then runs fault-free, still paying replication overhead
/// (that steady-state cost is what abl_recovery prices).
template <typename State>
State run_with_rebuild(LocaleGrid& grid, FaultPlan* plan,
                       const RecoverableLoop<State>& loop,
                       const RebuildOptions& opt,
                       RecoveryReport* report = nullptr) {
  PGB_REQUIRE(opt.max_failures >= 0, "rebuild: max_failures must be >= 0");
  struct Guard {
    LocaleGrid& g;
    FaultPlan* prev_plan;
    RetryPolicy prev_retry;
    bool prev_identity;
    bool keep_membership;
    ~Guard() {
      g.set_fault_plan(prev_plan);
      g.set_retry_policy(prev_retry);
      if (!keep_membership && prev_identity && g.membership().remapped()) {
        g.restore_membership();
      }
    }
  } guard{grid, grid.fault_plan(), grid.retry_policy(),
          !grid.membership().remapped(), opt.keep_membership};
  grid.set_fault_plan(plan);
  grid.set_retry_policy(opt.retry);
  if (report != nullptr) report->mode = to_string(opt.mode);

  // The store is built inside the guarded loop: its one-time static
  // replication is a comm phase, and a kill landing there (or a dead
  // host still in the mapping on a later driver call under the same
  // plan) must be handled like any mid-loop failure, not escape.
  std::optional<ReplicaStore> store;
  std::optional<State> state;
  std::int64_t rounds = 0;
  int failures = 0;
  int last_failed = -1;
  double t_safe = grid.time();
  bool restoring = false;
  for (;;) {
    try {
      if (!store.has_value()) store.emplace(grid, opt.replica);
      if (!state.has_value()) {
        if (store->protected_round() >= 0) {
          const std::int64_t restored_bytes = store->rebuild(last_failed);
          state.emplace(loop.load(store->restored()));
          rounds = store->protected_round();
          if (report != nullptr) report->bytes_restored += restored_bytes;
        } else {
          // Failed before the priming flush (or at first run): start
          // from scratch — with the membership already remapped in
          // degraded mode, so the rerun avoids the dead host.
          state.emplace(loop.init());
          rounds = 0;
          loop.save(*state, store->staging());
          store->flush(0);
          t_safe = grid.time();
        }
        if (restoring) {
          if (report != nullptr) report->sim_time_lost += grid.time() - t_safe;
          restoring = false;
          t_safe = grid.time();
        }
      }
      while (!loop.done(*state)) {
        loop.step(*state);
        ++rounds;
        // Phase boundary: stage the new state and ship the update log.
        loop.save(*state, store->staging());
        store->flush(rounds);
        t_safe = grid.time();
        if (report != nullptr) ++report->checkpoints;
      }
      if (report != nullptr) report->replica_bytes = store->shipped_bytes();
      return std::move(*state);
    } catch (const LocaleFailed& lf) {
      ++failures;
      if (failures > opt.max_failures || plan == nullptr) throw;
      const int logical = lf.locale();
      const int dead_host = grid.host_of(logical);
      if (opt.mode == RebuildMode::kDegraded) {
        const int new_host = grid.host_of(
            replica_buddy_of(logical, grid.num_locales()));
        if (new_host == dead_host ||
            plan->is_down(new_host, grid.time())) {
          // The buddy died too (or an earlier remap already routed the
          // logical there): a second overlapping failure exceeds the
          // single-fault tolerance of the replica scheme.
          throw;
        }
        grid.remap_locale(logical, new_host);
        if (report != nullptr) ++report->degraded_locales;
      } else {
        // A spare adopts the dead physical locale's identity, exactly
        // like rollback recovery replaces it.
        plan->mark_recovered(dead_host);
      }
      last_failed = logical;
      if (opt.on_rebuild) opt.on_rebuild(logical);
      // A kill during the store's own static replication leaves no
      // replicas to restore: drop the partial store and rebuild it from
      // scratch on the surviving mapping.
      const std::int64_t safe_round =
          store.has_value() ? store->protected_round() : -1;
      if (safe_round < 0) store.reset();
      grid.metrics().counter("recovery.restarts").inc();
      auto* session = grid.trace_session();
      if (session != nullptr) {
        session->instant(dead_host, "recovery.rebuild_started", grid.time(),
                         {{"logical", std::to_string(logical)},
                          {"mode", to_string(opt.mode)},
                          {"from_round", std::to_string(safe_round)}});
      }
      if (report != nullptr) {
        ++report->rebuilds;
        report->rounds_replayed += rounds - (safe_round >= 0 ? safe_round : 0);
      }
      restoring = true;
      state.reset();  // rebuilt from the replicas above
    }
  }
}

}  // namespace pgb
