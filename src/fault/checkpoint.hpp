// Checkpoint/restore for distributed state (header-only; sits above
// runtime and sparse in the layering, like obs/span.hpp).
//
// A Checkpoint is an in-memory stand-in for a stable store: per-locale
// serialized blocks, each guarded by an FNV-1a checksum, plus a manifest
// (the round the snapshot was taken after). Saving and restoring charge
// the simulated clocks — serialization streams through node memory
// bandwidth, the shipped bytes pay a modeled stable-store bandwidth —
// so the abl_fault_overhead ablation can price checkpoint cadence
// against recovery time.
//
// Serialization really happens (the blocks hold the real bytes), so a
// restore reproduces the snapshot bit for bit; corruption of a block is
// caught by the checksum at restore time.
#pragma once

#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/span.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dist_dense_vec.hpp"
#include "sparse/dist_sparse_vec.hpp"
#include "util/error.hpp"

namespace pgb {

/// FNV-1a 64-bit over a byte range.
inline std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// One locale's serialized share of a checkpointed object.
struct CheckpointBlock {
  int locale = 0;
  std::vector<unsigned char> bytes;
  std::uint64_t checksum = 0;

  void stamp() { checksum = fnv1a(bytes.data(), bytes.size()); }
  bool valid() const { return checksum == fnv1a(bytes.data(), bytes.size()); }
};

/// A named checkpointed object (one block per owning locale; host-side
/// and scalar state lives in a single locale-0 block).
struct CheckpointEntry {
  std::string key;
  std::vector<CheckpointBlock> blocks;

  std::int64_t bytes() const {
    std::int64_t b = 0;
    for (const auto& blk : blocks) b += static_cast<std::int64_t>(blk.bytes.size());
    return b;
  }
};

class Checkpoint {
 public:
  /// Manifest: rounds completed when this snapshot was taken (-1: never
  /// saved).
  std::int64_t round = -1;

  void clear() {
    entries_.clear();
    index_.clear();
    round = -1;
  }

  bool has(const std::string& key) const { return find(key) != nullptr; }

  // Lookups go through a key -> slot index map rather than scanning
  // entries_: state machines with many registered blocks (k-truss) call
  // find once per key per round, and the linear scan made checkpoint
  // cadence O(entries * lookups).
  const CheckpointEntry* find(const std::string& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &entries_[it->second];
  }

  /// Mutable lookup — lets tests corrupt a block and assert the checksum
  /// catches it.
  CheckpointEntry* find_mutable(const std::string& key) {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &entries_[it->second];
  }

  /// Number of named entries (index/entry coherence checks in tests).
  std::size_t size() const { return entries_.size(); }

  /// The entries in insertion order (replication diffing walks them).
  const std::vector<CheckpointEntry>& entries() const { return entries_; }

  std::int64_t total_bytes() const {
    std::int64_t b = 0;
    for (const auto& e : entries_) b += e.bytes();
    return b;
  }

  /// Bytes owned by one locale (its share of the modeled stable-store
  /// traffic; host/scalar blocks are attributed to locale 0).
  std::int64_t locale_bytes(int locale) const {
    std::int64_t b = 0;
    for (const auto& e : entries_) {
      for (const auto& blk : e.blocks) {
        if (blk.locale == locale) b += static_cast<std::int64_t>(blk.bytes.size());
      }
    }
    return b;
  }

  /// True when every block's checksum still matches its bytes.
  bool verify() const {
    for (const auto& e : entries_) {
      for (const auto& blk : e.blocks) {
        if (!blk.valid()) return false;
      }
    }
    return true;
  }

  // -- writers (replace any previous entry under the same key) --

  template <typename T>
  void put_dense(const std::string& key, const DistDenseVec<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    CheckpointEntry e{key, {}};
    for (int l = 0; l < v.grid().num_locales(); ++l) {
      const auto raw = v.local(l).raw();
      CheckpointBlock blk{l, {}, 0};
      append(blk.bytes, raw.data(), raw.size() * sizeof(T));
      blk.stamp();
      e.blocks.push_back(std::move(blk));
    }
    replace(std::move(e));
  }

  template <typename T>
  void put_sparse(const std::string& key, const DistSparseVec<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    CheckpointEntry e{key, {}};
    for (int l = 0; l < v.grid().num_locales(); ++l) {
      const auto& lv = v.local(l);
      const std::int64_t nnz = lv.nnz();
      CheckpointBlock blk{l, {}, 0};
      append(blk.bytes, &nnz, sizeof(nnz));
      append(blk.bytes, lv.domain().indices().data(),
             static_cast<std::size_t>(nnz) * sizeof(Index));
      append(blk.bytes, lv.values().data(),
             static_cast<std::size_t>(nnz) * sizeof(T));
      blk.stamp();
      e.blocks.push_back(std::move(blk));
    }
    replace(std::move(e));
  }

  /// Host-side (replicated) array, e.g. a result's parent vector.
  template <typename T>
  void put_host(const std::string& key, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    CheckpointEntry e{key, {}};
    CheckpointBlock blk{0, {}, 0};
    const std::int64_t n = static_cast<std::int64_t>(v.size());
    append(blk.bytes, &n, sizeof(n));
    append(blk.bytes, v.data(), v.size() * sizeof(T));
    blk.stamp();
    e.blocks.push_back(std::move(blk));
    replace(std::move(e));
  }

  template <typename T>
  void put_scalar(const std::string& key, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    CheckpointEntry e{key, {}};
    CheckpointBlock blk{0, {}, 0};
    append(blk.bytes, &v, sizeof(T));
    blk.stamp();
    e.blocks.push_back(std::move(blk));
    replace(std::move(e));
  }

  // -- readers (throw on missing keys, shape mismatch, or a failed
  //    block checksum) --

  template <typename T>
  void get_dense(const std::string& key, DistDenseVec<T>& v) const {
    const CheckpointEntry& e = require(key);
    PGB_REQUIRE(static_cast<int>(e.blocks.size()) == v.grid().num_locales(),
                "checkpoint: '" + key + "' was saved on a different grid");
    for (int l = 0; l < v.grid().num_locales(); ++l) {
      const CheckpointBlock& blk = check(e, l);
      auto raw = v.local(l).raw();
      PGB_REQUIRE(blk.bytes.size() == raw.size() * sizeof(T),
                  "checkpoint: '" + key + "' block size mismatch");
      std::memcpy(raw.data(), blk.bytes.data(), blk.bytes.size());
    }
  }

  template <typename T>
  void get_sparse(const std::string& key, DistSparseVec<T>& v) const {
    const CheckpointEntry& e = require(key);
    PGB_REQUIRE(static_cast<int>(e.blocks.size()) == v.grid().num_locales(),
                "checkpoint: '" + key + "' was saved on a different grid");
    for (int l = 0; l < v.grid().num_locales(); ++l) {
      const CheckpointBlock& blk = check(e, l);
      std::size_t off = 0;
      std::int64_t nnz = 0;
      read(blk, key, off, &nnz, sizeof(nnz));
      std::vector<Index> idx(static_cast<std::size_t>(nnz));
      std::vector<T> vals(static_cast<std::size_t>(nnz));
      read(blk, key, off, idx.data(), idx.size() * sizeof(Index));
      read(blk, key, off, vals.data(), vals.size() * sizeof(T));
      v.local(l) = SparseVec<T>::from_sorted(v.dist().local_size(l),
                                             std::move(idx), std::move(vals));
    }
  }

  template <typename T>
  std::vector<T> get_host(const std::string& key) const {
    const CheckpointEntry& e = require(key);
    const CheckpointBlock& blk = check(e, 0);
    std::size_t off = 0;
    std::int64_t n = 0;
    read(blk, key, off, &n, sizeof(n));
    std::vector<T> v(static_cast<std::size_t>(n));
    read(blk, key, off, v.data(), v.size() * sizeof(T));
    return v;
  }

  template <typename T>
  T get_scalar(const std::string& key) const {
    const CheckpointEntry& e = require(key);
    const CheckpointBlock& blk = check(e, 0);
    PGB_REQUIRE(blk.bytes.size() == sizeof(T),
                "checkpoint: '" + key + "' scalar size mismatch");
    T v;
    std::memcpy(&v, blk.bytes.data(), sizeof(T));
    return v;
  }

 private:
  static void append(std::vector<unsigned char>& out, const void* data,
                     std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    out.insert(out.end(), p, p + n);
  }

  void read(const CheckpointBlock& blk, const std::string& key,
            std::size_t& off, void* out, std::size_t n) const {
    PGB_REQUIRE(off + n <= blk.bytes.size(),
                "checkpoint: '" + key + "' block truncated");
    std::memcpy(out, blk.bytes.data() + off, n);
    off += n;
  }

  const CheckpointEntry& require(const std::string& key) const {
    const CheckpointEntry* e = find(key);
    PGB_REQUIRE(e != nullptr, "checkpoint: no entry '" + key + "'");
    return *e;
  }

  /// Block for `locale`, checksum-verified.
  const CheckpointBlock& check(const CheckpointEntry& e, int locale) const {
    for (const auto& blk : e.blocks) {
      if (blk.locale == locale) {
        if (!blk.valid()) {
          throw Error("checkpoint: checksum mismatch in '" + e.key +
                      "' block of locale " + std::to_string(locale) +
                      " (stable-store corruption)");
        }
        return blk;
      }
    }
    throw Error("checkpoint: '" + e.key + "' has no block for locale " +
                std::to_string(locale));
  }

  void replace(CheckpointEntry e) {
    const auto it = index_.find(e.key);
    if (it != index_.end()) {
      entries_[it->second] = std::move(e);
      return;
    }
    index_.emplace(e.key, entries_.size());
    entries_.push_back(std::move(e));
  }

  std::vector<CheckpointEntry> entries_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// Charges the simulated cost of writing `ckpt` to the stable store:
/// each locale streams its own blocks through node memory (serialization)
/// and ships them at `stable_bw` bytes/s, then all locales synchronize —
/// a checkpoint is only durable once every block landed. Publishes
/// ckpt.saves / ckpt.bytes and a "checkpoint" span.
inline void charge_checkpoint_save(LocaleGrid& grid, const Checkpoint& ckpt,
                                   double stable_bw) {
  PGB_REQUIRE(stable_bw > 0.0, "checkpoint: stable_bw must be positive");
  PGB_TRACE_SPAN(grid, "checkpoint",
                 {{"dir", "save"},
                  {"round", std::to_string(ckpt.round)},
                  {"bytes", std::to_string(ckpt.total_bytes())}});
  grid.metrics().counter("ckpt.saves").inc();
  grid.metrics().counter("ckpt.bytes").inc(ckpt.total_bytes());
  const double serialize_bw = grid.model().node.bw_core;
  for (int l = 0; l < grid.num_locales(); ++l) {
    const double b = static_cast<double>(ckpt.locale_bytes(l));
    grid.clock(l).advance(b / serialize_bw + b / stable_bw);
  }
  grid.barrier_all();
}

/// Charges the simulated cost of restoring from `ckpt` after a locale
/// failure: every locale re-reads its blocks from the stable store, and
/// the replacement locale additionally re-ships `static_bytes` of
/// unchanging state (its matrix blocks). All clocks join at the end —
/// restart is globally synchronous. Publishes ckpt.restores.
inline void charge_checkpoint_restore(LocaleGrid& grid, const Checkpoint& ckpt,
                                      double stable_bw,
                                      std::int64_t static_bytes) {
  PGB_REQUIRE(stable_bw > 0.0, "checkpoint: stable_bw must be positive");
  PGB_TRACE_SPAN(grid, "checkpoint",
                 {{"dir", "restore"},
                  {"round", std::to_string(ckpt.round)},
                  {"bytes", std::to_string(ckpt.total_bytes())}});
  grid.metrics().counter("ckpt.restores").inc();
  const double t0 = grid.time();
  double slowest = 0.0;
  for (int l = 0; l < grid.num_locales(); ++l) {
    slowest = std::max(
        slowest, static_cast<double>(ckpt.locale_bytes(l)) / stable_bw);
  }
  slowest += static_cast<double>(static_bytes) / stable_bw;
  for (int l = 0; l < grid.num_locales(); ++l) {
    grid.clock(l).advance_to(t0 + slowest);
  }
  grid.barrier_all();
}

}  // namespace pgb
