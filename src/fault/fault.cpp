#include "fault/fault.hpp"

#include <cmath>
#include <cstdlib>

namespace pgb {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "dup";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kLocaleFail:
      return "kill";
  }
  return "?";
}

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

double parse_num(const std::string& clause, const std::string& v) {
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  PGB_REQUIRE(end != nullptr && *end == '\0' && !v.empty(),
              "fault spec: bad number '" + v + "' in clause '" + clause +
                  "'");
  return x;
}

FaultKind parse_kind(const std::string& clause, const std::string& k) {
  if (k == "drop") return FaultKind::kDrop;
  if (k == "dup") return FaultKind::kDuplicate;
  if (k == "corrupt") return FaultKind::kCorrupt;
  if (k == "stall") return FaultKind::kStall;
  if (k == "kill") return FaultKind::kLocaleFail;
  throw InvalidArgument(
      "fault spec: unknown kind '" + k + "' in clause '" + clause +
      "' (expected drop, dup, corrupt, stall, or kill)");
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& spec) {
  FaultSpec out;
  PGB_REQUIRE(!spec.empty(), "fault spec: empty string");
  for (const std::string& clause : split(spec, ';')) {
    PGB_REQUIRE(!clause.empty(), "fault spec: empty clause in '" + spec + "'");
    const std::size_t colon = clause.find(':');
    FaultRule rule;
    rule.kind = parse_kind(clause, clause.substr(0, colon));
    bool saw_p = false, saw_ms = false, saw_at = false, saw_locale = false,
         saw_src = false;
    if (colon != std::string::npos) {
      for (const std::string& kv : split(clause.substr(colon + 1), ',')) {
        const std::size_t eq = kv.find('=');
        PGB_REQUIRE(eq != std::string::npos && eq > 0,
                    "fault spec: expected key=value, got '" + kv +
                        "' in clause '" + clause + "'");
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        if (key == "p") {
          rule.probability = parse_num(clause, val);
          saw_p = true;
        } else if (key == "locale" && rule.kind == FaultKind::kStall) {
          // stall:locale= is the deterministic *source* target, distinct
          // from peer= (destination filter on probabilistic rules).
          rule.src_locale = static_cast<int>(parse_num(clause, val));
          saw_src = true;
        } else if (key == "peer" || key == "locale") {
          rule.locale = static_cast<int>(parse_num(clause, val));
          saw_locale = true;
        } else if (key == "ms") {
          rule.stall_seconds = parse_num(clause, val) * 1e-3;
          saw_ms = true;
        } else if (key == "at") {
          rule.at_time = parse_num(clause, val);
          saw_at = true;
        } else {
          throw InvalidArgument("fault spec: unknown key '" + key +
                                "' in clause '" + clause + "'");
        }
      }
    }
    if (rule.kind == FaultKind::kLocaleFail) {
      PGB_REQUIRE(saw_locale && rule.locale >= 0,
                  "fault spec: kill needs locale=<id>: '" + clause + "'");
      PGB_REQUIRE(saw_at && rule.at_time >= 0.0,
                  "fault spec: kill needs at=<seconds >= 0>: '" + clause +
                      "'");
      PGB_REQUIRE(!saw_p && !saw_ms,
                  "fault spec: kill takes only locale= and at=: '" + clause +
                      "'");
    } else if (rule.kind == FaultKind::kStall && saw_src) {
      // Deterministic source-targeted stall: strict form, nothing
      // probabilistic may ride along.
      PGB_REQUIRE(rule.src_locale >= 0,
                  "fault spec: stall:locale=<id> must be >= 0: '" + clause +
                      "'");
      PGB_REQUIRE(!saw_p,
                  "fault spec: stall:locale= is deterministic; p= is not "
                  "allowed (use peer= with p= for probabilistic stalls): '" +
                      clause + "'");
      PGB_REQUIRE(!saw_locale,
                  "fault spec: stall:locale= takes no peer=: '" + clause +
                      "'");
      PGB_REQUIRE(!saw_at,
                  "fault spec: at= only applies to kill: '" + clause + "'");
      PGB_REQUIRE(saw_ms && rule.stall_seconds >= 0.0,
                  "fault spec: stall:locale= needs ms=<latency >= 0>: '" +
                      clause + "'");
    } else {
      PGB_REQUIRE(saw_p,
                  "fault spec: " + std::string(pgb::to_string(rule.kind)) +
                             " needs p=<probability>: '" + clause + "'");
      PGB_REQUIRE(rule.probability >= 0.0 && rule.probability <= 1.0,
                  "fault spec: probability must be in [0,1]: '" + clause +
                      "'");
      PGB_REQUIRE(!saw_at, "fault spec: at= only applies to kill: '" +
                               clause + "'");
      if (rule.kind == FaultKind::kStall) {
        PGB_REQUIRE(saw_ms && rule.stall_seconds >= 0.0,
                    "fault spec: stall needs ms=<latency >= 0>: '" + clause +
                        "'");
      } else {
        PGB_REQUIRE(!saw_ms, "fault spec: ms= only applies to stall: '" +
                                 clause + "'");
      }
    }
    out.rules.push_back(rule);
  }
  return out;
}

std::string FaultSpec::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const FaultRule& r = rules[i];
    if (i > 0) s += ';';
    s += pgb::to_string(r.kind);
    if (r.kind == FaultKind::kLocaleFail) {
      s += ":locale=" + std::to_string(r.locale) +
           ",at=" + std::to_string(r.at_time);
    } else if (r.kind == FaultKind::kStall && r.src_locale >= 0) {
      s += ":locale=" + std::to_string(r.src_locale) +
           ",ms=" + std::to_string(r.stall_seconds * 1e3);
    } else {
      s += ":p=" + std::to_string(r.probability);
      if (r.kind == FaultKind::kStall) {
        s += ",ms=" + std::to_string(r.stall_seconds * 1e3);
      }
      if (r.locale >= 0) s += ",peer=" + std::to_string(r.locale);
    }
  }
  return s;
}

void RetryPolicy::validate() const {
  PGB_REQUIRE(max_attempts >= 1,
              "retry policy: max_attempts must be >= 1 (0 would make every "
              "transfer undeliverable)");
  PGB_REQUIRE(timeout >= 0.0 && backoff >= 0.0 && jitter >= 0.0,
              "retry policy: times and jitter must be non-negative");
  PGB_REQUIRE(backoff_mult >= 1.0,
              "retry policy: backoff multiplier must be >= 1");
}

LocaleFailed::LocaleFailed(int locale, double sim_time)
    : Error("locale " + std::to_string(locale) +
            " failed permanently at simulated t=" + std::to_string(sim_time)),
      locale_(locale),
      sim_time_(sim_time) {}

FaultPlan::FaultPlan(FaultSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed), rng_(seed) {
  for (const FaultRule& r : spec_.rules) {
    if (r.kind == FaultKind::kLocaleFail) {
      kills_.push_back(Kill{r.locale, r.at_time, false});
    } else if (r.probability > 0.0 ||
               (r.kind == FaultKind::kStall && r.src_locale >= 0)) {
      message_rules_.push_back(r);
    }
  }
}

FaultPlan::AttemptFate FaultPlan::attempt_fate(int src, int peer) {
  AttemptFate fate;
  if (message_rules_.empty()) return fate;
  ++decisions_;
  for (const FaultRule& r : message_rules_) {
    if (r.kind == FaultKind::kStall && r.src_locale >= 0) {
      // Deterministic source-targeted stall: fires iff this locale is
      // the sender, and never touches the RNG — the decision stream
      // stays aligned with specs that omit the clause.
      if (r.src_locale == src) fate.stall += r.stall_seconds;
      continue;
    }
    // Every applicable rule draws, so the stream stays aligned across
    // runs regardless of which faults fire.
    if (r.locale >= 0 && r.locale != peer) continue;
    const bool hit = rng_.next_bernoulli(r.probability);
    if (!hit) continue;
    switch (r.kind) {
      case FaultKind::kDrop:
        fate.drop = true;
        break;
      case FaultKind::kDuplicate:
        fate.duplicate = true;
        break;
      case FaultKind::kCorrupt:
        fate.corrupt = true;
        break;
      case FaultKind::kStall:
        fate.stall += r.stall_seconds;
        break;
      case FaultKind::kLocaleFail:
        break;  // not a message rule
    }
  }
  return fate;
}

bool FaultPlan::is_down(int locale, double sim_now) const {
  for (const Kill& k : kills_) {
    if (k.locale == locale && !k.recovered && sim_now >= k.at_time) {
      return true;
    }
  }
  return false;
}

double FaultPlan::kill_time(int locale) const {
  double t = std::numeric_limits<double>::infinity();
  for (const Kill& k : kills_) {
    if (k.locale == locale && !k.recovered) t = std::min(t, k.at_time);
  }
  return t;
}

void FaultPlan::mark_recovered(int locale) {
  for (Kill& k : kills_) {
    if (k.locale == locale) k.recovered = true;
  }
}

DeliveryOutcome plan_delivery(FaultPlan& plan, const RetryPolicy& rp,
                              int src, int peer, double sim_now) {
  DeliveryOutcome out;
  const bool down = plan.is_down(peer, sim_now);
  double backoff = rp.backoff;
  for (int attempt = 1;; ++attempt) {
    out.attempts = attempt;
    const FaultPlan::AttemptFate fate = plan.attempt_fate(src, peer);
    if (fate.stall > 0.0) {
      ++out.stalls;
      out.stall_time += fate.stall;
    }
    if (fate.duplicate && !down) ++out.duplicates;
    if (!down && !fate.drop && !fate.corrupt) return out;  // delivered + acked
    if (down || fate.drop) {
      // The message (or its ack) vanished: the sender waits out the ack
      // timeout before concluding the attempt failed.
      if (!down) ++out.drops;
      ++out.timeouts;
      out.wait_time += rp.timeout;
    } else {
      // Corrupt: the payload arrived, the checksum failed, and the
      // receiver NAKed immediately — no timeout, straight to re-send.
      ++out.corrupts;
    }
    if (attempt >= rp.max_attempts) {
      out.delivered = false;
      return out;
    }
    out.wait_time += backoff * (1.0 + rp.jitter * plan.uniform());
    backoff *= rp.backoff_mult;
  }
}

}  // namespace pgb
