// Checkpoint/restart recovery driver.
//
// Iterative algorithms in this codebase are round-structured (BFS levels,
// Bellman-Ford relaxations, pagerank iterations), so recovery is the
// classic coordinated scheme: snapshot the loop state every K completed
// rounds; when the grid's coforall dispatch reports a permanently failed
// locale (LocaleFailed), replace the locale, restore the last snapshot,
// and resume. Re-executed rounds recompute over bit-identical inputs, so
// the recovered run's result is bit-for-bit the fault-free result — the
// only difference is modeled time and re-paid communication.
//
// RecoverableLoop is the contract an algorithm exposes: construct the
// initial state, advance it one round, snapshot it, and rebuild it from
// a snapshot. algo/algo_recovery.hpp adapts BFS/SSSP/pagerank to it.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>

#include "fault/checkpoint.hpp"
#include "fault/fault.hpp"
#include "runtime/locale_grid.hpp"

namespace pgb {

struct RecoveryOptions {
  /// Snapshot every this many completed rounds (0 disables
  /// checkpointing: a failure restarts the loop from scratch).
  int checkpoint_every = 4;
  /// Delivery guarantees installed on the grid for the run.
  RetryPolicy retry;
  /// Modeled stable-store bandwidth, bytes/s (burst-buffer class).
  double stable_bw = 5e9;
  /// Unchanging bytes the replacement locale re-ships on restore (the
  /// algorithm's matrix blocks; algo wrappers fill this in).
  std::int64_t static_bytes = 0;
  /// Give up (rethrow LocaleFailed) after this many restarts.
  int max_restarts = 8;
};

/// Structured outcome of a recovered run, shared by the rollback driver
/// here and the localized-rebuild driver (fault/rebuild.hpp). `pgb`
/// prints summary() in its fault summary; the abl_recovery ablation
/// compares sim_time_lost across recovery paths.
struct RecoveryReport {
  const char* mode = "none";  ///< rollback | spare-rebuild | degraded
  int restarts = 0;           ///< global checkpoint rollbacks taken
  int rebuilds = 0;           ///< localized rebuilds (rebuild driver)
  int checkpoints = 0;        ///< snapshots saved (or replica flushes)
  std::int64_t checkpoint_bytes = 0;  ///< sum over saved snapshots
  std::int64_t replica_bytes = 0;     ///< incremental replica bytes shipped
  std::int64_t bytes_restored = 0;    ///< bytes reloaded/shipped to rebuild
  std::int64_t rounds_replayed = 0;   ///< rounds re-executed after restores
  int degraded_locales = 0;  ///< logical locales co-hosted after remaps
  /// Simulated time a failure cost: discarded work since the last safe
  /// snapshot plus the restore/rebuild itself, summed over failures.
  double sim_time_lost = 0.0;

  std::string summary() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "mode=%s restarts=%d rebuilds=%d replayed=%lld "
                  "lost=%.3fms restored=%lld B",
                  mode, restarts, rebuilds,
                  static_cast<long long>(rounds_replayed),
                  sim_time_lost * 1e3,
                  static_cast<long long>(bytes_restored));
    return buf;
  }
};

/// The algorithm-side contract of run_with_recovery.
template <typename State>
struct RecoverableLoop {
  std::function<State()> init;
  std::function<void(State&)> step;           ///< one round; sets done
  std::function<bool(const State&)> done;
  std::function<void(const State&, Checkpoint&)> save;
  std::function<State(const Checkpoint&)> load;
};

/// Runs `loop` to completion under `plan`, surviving locale kills by
/// checkpoint/restart. Installs `plan` and `opt.retry` on the grid for
/// the duration (restoring whatever was attached before). `plan` may be
/// null — the loop then just runs fault-free.
template <typename State>
State run_with_recovery(LocaleGrid& grid, FaultPlan* plan,
                        const RecoverableLoop<State>& loop,
                        const RecoveryOptions& opt,
                        RecoveryReport* report = nullptr) {
  PGB_REQUIRE(opt.checkpoint_every >= 0,
              "recovery: checkpoint_every must be >= 0");
  PGB_REQUIRE(opt.max_restarts >= 0, "recovery: max_restarts must be >= 0");
  struct Guard {
    LocaleGrid& g;
    FaultPlan* prev_plan;
    RetryPolicy prev_retry;
    ~Guard() {
      g.set_fault_plan(prev_plan);
      g.set_retry_policy(prev_retry);
    }
  } guard{grid, grid.fault_plan(), grid.retry_policy()};
  grid.set_fault_plan(plan);
  grid.set_retry_policy(opt.retry);
  if (report != nullptr) report->mode = "rollback";

  Checkpoint ckpt;
  std::optional<State> state;
  std::int64_t rounds = 0;
  int restarts = 0;
  // The last moment the run was "safe": work since then is what a
  // failure discards. Starts at run begin (failing before the first
  // checkpoint restarts from scratch).
  double t_safe = grid.time();
  bool restoring = false;
  for (;;) {
    try {
      if (!state.has_value()) {
        if (ckpt.round >= 0) {
          charge_checkpoint_restore(grid, ckpt, opt.stable_bw,
                                    opt.static_bytes);
          state.emplace(loop.load(ckpt));
          rounds = ckpt.round;
          if (report != nullptr) {
            report->bytes_restored += ckpt.total_bytes() + opt.static_bytes;
          }
        } else {
          state.emplace(loop.init());
          rounds = 0;
        }
        if (restoring) {
          // Everything between the last safe point and the end of the
          // restore is the failure's bill.
          if (report != nullptr) report->sim_time_lost += grid.time() - t_safe;
          restoring = false;
          t_safe = grid.time();
        }
      }
      while (!loop.done(*state)) {
        loop.step(*state);
        ++rounds;
        if (opt.checkpoint_every > 0 && rounds % opt.checkpoint_every == 0) {
          ckpt.clear();
          loop.save(*state, ckpt);
          ckpt.round = rounds;
          charge_checkpoint_save(grid, ckpt, opt.stable_bw);
          t_safe = grid.time();
          if (report != nullptr) {
            ++report->checkpoints;
            report->checkpoint_bytes += ckpt.total_bytes();
          }
        }
      }
      return std::move(*state);
    } catch (const LocaleFailed& lf) {
      ++restarts;
      if (restarts > opt.max_restarts || plan == nullptr) throw;
      // The failed locale is replaced: the stand-in adopts its id and
      // its block assignment, so the plan stops reporting it down. (This
      // driver never remaps membership, so the logical locale carried by
      // the exception *is* the physical host.)
      plan->mark_recovered(lf.locale());
      grid.metrics().counter("recovery.restarts").inc();
      auto* session = grid.trace_session();
      if (session != nullptr) {
        session->instant(lf.locale(), "recovery.restart", grid.time(),
                         {{"restart", std::to_string(restarts)},
                          {"from_round",
                           std::to_string(ckpt.round >= 0 ? ckpt.round : 0)}});
      }
      if (report != nullptr) {
        ++report->restarts;
        report->rounds_replayed += rounds - (ckpt.round >= 0 ? ckpt.round : 0);
      }
      restoring = true;
      state.reset();  // rebuilt from the snapshot (or scratch) above
    }
  }
}

}  // namespace pgb
