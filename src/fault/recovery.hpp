// Checkpoint/restart recovery driver.
//
// Iterative algorithms in this codebase are round-structured (BFS levels,
// Bellman-Ford relaxations, pagerank iterations), so recovery is the
// classic coordinated scheme: snapshot the loop state every K completed
// rounds; when the grid's coforall dispatch reports a permanently failed
// locale (LocaleFailed), replace the locale, restore the last snapshot,
// and resume. Re-executed rounds recompute over bit-identical inputs, so
// the recovered run's result is bit-for-bit the fault-free result — the
// only difference is modeled time and re-paid communication.
//
// RecoverableLoop is the contract an algorithm exposes: construct the
// initial state, advance it one round, snapshot it, and rebuild it from
// a snapshot. algo/algo_recovery.hpp adapts BFS/SSSP/pagerank to it.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "fault/checkpoint.hpp"
#include "fault/fault.hpp"
#include "runtime/locale_grid.hpp"

namespace pgb {

struct RecoveryOptions {
  /// Snapshot every this many completed rounds (0 disables
  /// checkpointing: a failure restarts the loop from scratch).
  int checkpoint_every = 4;
  /// Delivery guarantees installed on the grid for the run.
  RetryPolicy retry;
  /// Modeled stable-store bandwidth, bytes/s (burst-buffer class).
  double stable_bw = 5e9;
  /// Unchanging bytes the replacement locale re-ships on restore (the
  /// algorithm's matrix blocks; algo wrappers fill this in).
  std::int64_t static_bytes = 0;
  /// Give up (rethrow LocaleFailed) after this many restarts.
  int max_restarts = 8;
};

struct RecoveryStats {
  int restarts = 0;
  int checkpoints = 0;
  std::int64_t checkpoint_bytes = 0;  ///< sum over saved snapshots
  std::int64_t rounds_replayed = 0;   ///< rounds re-executed after restores
};

/// The algorithm-side contract of run_with_recovery.
template <typename State>
struct RecoverableLoop {
  std::function<State()> init;
  std::function<void(State&)> step;           ///< one round; sets done
  std::function<bool(const State&)> done;
  std::function<void(const State&, Checkpoint&)> save;
  std::function<State(const Checkpoint&)> load;
};

/// Runs `loop` to completion under `plan`, surviving locale kills by
/// checkpoint/restart. Installs `plan` and `opt.retry` on the grid for
/// the duration (restoring whatever was attached before). `plan` may be
/// null — the loop then just runs fault-free.
template <typename State>
State run_with_recovery(LocaleGrid& grid, FaultPlan* plan,
                        const RecoverableLoop<State>& loop,
                        const RecoveryOptions& opt,
                        RecoveryStats* stats = nullptr) {
  PGB_REQUIRE(opt.checkpoint_every >= 0,
              "recovery: checkpoint_every must be >= 0");
  PGB_REQUIRE(opt.max_restarts >= 0, "recovery: max_restarts must be >= 0");
  struct Guard {
    LocaleGrid& g;
    FaultPlan* prev_plan;
    RetryPolicy prev_retry;
    ~Guard() {
      g.set_fault_plan(prev_plan);
      g.set_retry_policy(prev_retry);
    }
  } guard{grid, grid.fault_plan(), grid.retry_policy()};
  grid.set_fault_plan(plan);
  grid.set_retry_policy(opt.retry);

  Checkpoint ckpt;
  std::optional<State> state;
  std::int64_t rounds = 0;
  int restarts = 0;
  for (;;) {
    try {
      if (!state.has_value()) {
        if (ckpt.round >= 0) {
          charge_checkpoint_restore(grid, ckpt, opt.stable_bw,
                                    opt.static_bytes);
          state.emplace(loop.load(ckpt));
          rounds = ckpt.round;
        } else {
          state.emplace(loop.init());
          rounds = 0;
        }
      }
      while (!loop.done(*state)) {
        loop.step(*state);
        ++rounds;
        if (opt.checkpoint_every > 0 && rounds % opt.checkpoint_every == 0) {
          ckpt.clear();
          loop.save(*state, ckpt);
          ckpt.round = rounds;
          charge_checkpoint_save(grid, ckpt, opt.stable_bw);
          if (stats != nullptr) {
            ++stats->checkpoints;
            stats->checkpoint_bytes += ckpt.total_bytes();
          }
        }
      }
      return std::move(*state);
    } catch (const LocaleFailed& lf) {
      ++restarts;
      if (restarts > opt.max_restarts || plan == nullptr) throw;
      // The failed locale is replaced: the stand-in adopts its id and
      // its block assignment, so the plan stops reporting it down.
      plan->mark_recovered(lf.locale());
      grid.metrics().counter("recovery.restarts").inc();
      auto* session = grid.trace_session();
      if (session != nullptr) {
        session->instant(lf.locale(), "recovery.restart", grid.time(),
                         {{"restart", std::to_string(restarts)},
                          {"from_round",
                           std::to_string(ckpt.round >= 0 ? ckpt.round : 0)}});
      }
      if (stats != nullptr) {
        ++stats->restarts;
        stats->rounds_replayed += rounds - (ckpt.round >= 0 ? ckpt.round : 0);
      }
      state.reset();  // rebuilt from the snapshot (or scratch) above
    }
  }
}

}  // namespace pgb
