// Inspector–executor communication optimization.
//
// Every distributed kernel in this codebase has a small number of comm
// *sites* — the SpMSpV gather of input-vector pieces, its scatter of
// partial products, the indexed assign/extract routing loops — and each
// site hardcodes one of the fine/bulk/agg schedules per call. The best
// choice is workload-dependent (dense frontiers favor bulk, sparse tails
// favor agg), which is exactly the irregular-access problem the
// inspector–executor compiler transformation solves for PGAS programs:
// inspect the access pattern once, then bind an optimized executor.
//
// This header is the runtime half of that idea. Each call site registers
// under a stable id ("spmspv.gather", "mxv.scatter", ...). Before a
// communication wave the kernel hands the inspector the wave's *footprint*
// — how many remote (initiator, target) pairs it will touch, how many
// elements, the bytes/element ratio, the fan-out skew, and whether the
// accesses are read-only — and the inspector prices every legal strategy
// through the same NetworkModel formulas the kernels charge with,
// returning the argmin:
//
//   kFine        the paper's element-by-element schedule
//   kBulk        one hand-rolled transfer per peer
//   kAggregated  conveyor-style buffered flushes, with an auto-tuned
//                capacity (~4 flushes per peer so transfers overlap)
//   kReplicate   selective read-only replication: ship the remote block
//                once per reader host through a binomial broadcast tree
//                and serve every later read locally
//
// Replicated blocks live in an epoch-cached replica table keyed by
// (site, source locale, reader host) and tagged with a content
// fingerprint. Two things invalidate an entry: the content tag changing
// (the source was rewritten — the entry is re-shipped on next use), and
// the Membership epoch moving (a degraded-mode remap — the *whole* cache
// is flushed, counted in `inspector.cache.invalidations`, so a remapped
// locale can never be served stale state).
//
// Determinism and correctness: decisions are pure functions of the
// footprint and the site's own call history — no wall clock, no pointer
// identity — so same-seed runs make identical decisions. Data is always
// read and written directly in-process regardless of strategy (the
// schedules only differ in *charging*), so a mispredicted strategy or a
// fingerprint collision can only mis-model time, never corrupt results;
// outputs stay byte-identical across all schedules, auto included.
//
// Counters (all registered lazily, on first inspector use, so runs that
// never engage kAuto keep their exact metric key set):
//   inspector.sites                      distinct sites seen
//   inspector.decisions{strategy=S}      decisions per strategy
//   inspector.site.decisions{site=,strategy=}  per-site decision mix —
//       these flow into pgb --profile, so pgb_diff flags a silent
//       strategy flip between runs as a structural diff
//   inspector.replicated_bytes           bytes shipped into replicas
//   inspector.cache.hits / .installs / .invalidations
//   inspector.mispriced                  observed waves whose charged-vs-
//       predicted ratio drifted outside the 2x band around the site's
//       running ratio — the closed-loop calibration signal (see
//       Inspector::observe)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "machine/network_model.hpp"
#include "obs/metrics.hpp"
#include "runtime/dist.hpp"

namespace pgb {

/// Executor strategy bound to one access site for one wave.
enum class SiteStrategy {
  kFine,
  kBulk,
  kAggregated,
  kReplicate,
};

const char* to_string(SiteStrategy s);

/// Depth of the binomial broadcast tree that ships a replicated block to
/// `fanout` reader hosts: ceil(log2(fanout)), at least 1 (a plain
/// point-to-point ship). Every reader is conservatively charged the full
/// depth, which keeps the charge independent of traversal order.
int replication_tree_depth(double fanout);

/// One communication wave's remote-access pattern, recorded by the
/// inspector before the wave runs. All quantities are cheaply computable
/// upper-bound estimates (piece sizes, not post-filter counts); since
/// every candidate strategy is priced from the same estimate, ranking
/// errors only matter near crossovers where the schedules tie anyway.
struct SiteFootprint {
  /// Remote (initiator, target) pairs across the whole wave.
  std::int64_t pairs = 0;
  /// Total remote elements across the whole wave.
  std::int64_t elements = 0;
  /// Heaviest single initiator's remote elements / pairs: the wave's
  /// critical path (the grid advances to the max clock at the barrier).
  std::int64_t max_initiator_elements = 0;
  std::int64_t max_initiator_pairs = 0;
  /// Payload bytes per element.
  std::int64_t bytes_each = 16;
  /// Bytes the heaviest initiator would ship if it replicated every
  /// block it reads (may exceed elements * bytes_each when only a slice
  /// of each block is actually read, e.g. indexed extract). 0 means
  /// "same as max_initiator_elements * bytes_each".
  std::int64_t block_bytes = 0;
  /// Simultaneous requesters per target (AM-handler contention — the
  /// same multiplier the hand-rolled schedules charge).
  double fanout = 1.0;
  /// Dependent round trips per element under kFine (remote binary
  /// search); 0 means the fine messages are independent/overlapped.
  double chain_rts = 0.0;
  /// Node-side fixed cost (seconds) the kernel charges per remote pair
  /// under kBulk and nowhere else — e.g. the SpMSpV/MxV scatters issue
  /// one packing parallel-region per destination, whose task-spawn floor
  /// (LocaleGrid::region_floor()) dwarfs the wire cost at small batch
  /// sizes. 0 for sites whose bulk path folds packing into a shared
  /// region.
  double bulk_pair_overhead = 0.0;
  /// Read-only gathers may replicate; scatters may not.
  bool read_only = false;
  bool gather = true;

  /// Order-insensitive mix of the fields, used to detect a site being
  /// re-run with an identical footprint (temporal reuse).
  std::uint64_t signature() const;
};

/// The inspector's binding for one wave.
struct SiteDecision {
  SiteStrategy strategy = SiteStrategy::kBulk;
  /// Auto-tuned aggregator capacity (meaningful under kAggregated).
  std::int64_t agg_capacity = 2048;
  /// Modeled wave time of the chosen strategy, for reporting.
  double predicted = 0.0;
};

/// Per-site summary for `pgb --comm=auto` decision dumps.
struct SiteReport {
  std::string site;
  std::int64_t calls = 0;
  SiteStrategy last_strategy = SiteStrategy::kBulk;
  std::int64_t decisions[4] = {0, 0, 0, 0};  ///< indexed by SiteStrategy
  double last_predicted = 0.0;
  SiteFootprint last_footprint;
  /// Closed-loop calibration inputs (Inspector::observe): total charged
  /// wave time vs total predicted time over the waves that reported
  /// back, and how many of those waves were mispriced — their own
  /// ratio drifted outside the 2x band around the running
  /// observed_total/predicted_total ratio. The ratio itself carries a
  /// constant factor (prediction is remote-only; charges include local
  /// work); a *stable* ratio means the pricing still ranks waves
  /// correctly, drift means it has stopped tracking this site.
  double observed_total = 0.0;
  double predicted_total = 0.0;
  std::int64_t observed_waves = 0;
  std::int64_t mispriced_waves = 0;
};

/// Grid-wide inspector state. Owned by value by the LocaleGrid;
/// `LocaleGrid::inspector()` re-binds the registry/model/membership
/// pointers on every access so a moved grid never leaves them dangling.
///
/// Thread-safety: none needed — `coforall_locales` runs per-locale
/// bodies serially (the simulator parallelism is modeled, not real).
class Inspector {
 public:
  Inspector() = default;

  /// Rebinds the collaborator pointers; called by LocaleGrid::inspector().
  void bind(obs::MetricsRegistry* mx, const NetworkModel* net,
            const Membership* membership, int colocated) {
    mx_ = mx;
    net_ = net;
    membership_ = membership;
    colocated_ = colocated;
  }

  /// Prices every legal strategy for `site`'s next wave and returns the
  /// cheapest. Registers the site on first sight and publishes the
  /// decision counters.
  SiteDecision decide(const std::string& site, const SiteFootprint& fp);

  /// Replica-cache probe for (site, source logical locale) as seen from
  /// `reader_host`. A hit (same content tag, same membership epoch)
  /// means the block is already resident: the caller charges nothing.
  /// A tag mismatch is a miss — the stale entry is dropped and the
  /// caller re-ships (cache_install overwrites).
  bool cache_lookup(const std::string& site, int src, int reader_host,
                    std::uint64_t tag);

  /// Records a freshly shipped replica of `bytes` bytes.
  void cache_install(const std::string& site, int src, int reader_host,
                     std::uint64_t tag, std::int64_t bytes);

  /// Executor feedback: the *charged* simulated time the wave actually
  /// took at `site` (the same clocks the decision priced against).
  /// Accumulates the observed/predicted totals behind the decision dump's
  /// mispricing ratio and bumps `inspector.mispriced` when this wave's
  /// ratio drifts outside the [1/2, 2] band around the site's running
  /// ratio — groundwork for feeding charges back into the pricing model
  /// (closed-loop calibration).
  void observe(const std::string& site, double observed_seconds);

  /// Live replica-cache entries (test hook).
  std::int64_t cached_blocks() const {
    return static_cast<std::int64_t>(cache_.size());
  }

  /// Distinct sites seen since the last reset.
  std::int64_t num_sites() const {
    return static_cast<std::int64_t>(sites_.size());
  }

  /// Per-site decision summaries, ordered by site id.
  std::vector<SiteReport> report() const;

  /// Forgets all sites and replicas (LocaleGrid::reset()). Nothing is
  /// counted: reset starts a new epoch of metrics anyway.
  void reset() {
    sites_.clear();
    cache_.clear();
    epoch_synced_ = false;
  }

 private:
  struct SiteState {
    std::int64_t calls = 0;
    std::uint64_t last_signature = 0;
    /// Consecutive calls with an identical footprint signature: the
    /// temporal-reuse factor that amortizes replication cost.
    std::int64_t repeat_streak = 0;
    SiteStrategy last_strategy = SiteStrategy::kBulk;
    std::int64_t decisions[4] = {0, 0, 0, 0};
    double last_predicted = 0.0;
    SiteFootprint last_footprint;
    double observed_total = 0.0;
    double predicted_total = 0.0;
    std::int64_t observed_waves = 0;
    std::int64_t mispriced_waves = 0;
    /// Replica-cache probes that found a resident entry (compulsory
    /// cold misses are excluded), and how many matched the content tag.
    /// Their ratio is the observed reuse that amortizes the predicted
    /// replication ship cost — a site whose source content churns every
    /// wave (fingerprint misses) drifts back to the other schedules
    /// automatically.
    std::int64_t cache_lookups = 0;
    std::int64_t cache_hits = 0;
  };

  struct Replica {
    std::uint64_t tag = 0;
    std::int64_t bytes = 0;
  };

  /// Membership-epoch guard shared by decide() and the cache ops: when
  /// the epoch has moved since the cache was built (a degraded-mode
  /// remap), every replica is flushed and counted — remapped locales
  /// must never be served pre-remap state.
  void sync_epoch();

  obs::MetricsRegistry* mx_ = nullptr;
  const NetworkModel* net_ = nullptr;
  const Membership* membership_ = nullptr;
  int colocated_ = 1;

  std::map<std::string, SiteState> sites_;
  std::map<std::tuple<std::string, int, int>, Replica> cache_;
  std::uint64_t cache_epoch_ = 0;
  bool epoch_synced_ = false;
};

}  // namespace pgb
