// Block distributions: the analogue of Chapel's Block dmap.
//
// BlockDist1D partitions an index range [0, n) "evenly" across `parts`
// (Chapel's formula: part p owns [n*p/parts, n*(p+1)/parts)). BlockDist2D
// composes two 1-D distributions over a 2-D locale grid, which is the
// layout the paper uses for sparse matrices (Section II-B).
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace pgb {

using Index = std::int64_t;

class BlockDist1D {
 public:
  BlockDist1D() = default;
  BlockDist1D(Index n, int parts) : n_(n), parts_(parts) {
    PGB_REQUIRE(n >= 0, "negative domain size");
    PGB_REQUIRE(parts >= 1, "need at least one part");
  }

  Index n() const { return n_; }
  int parts() const { return parts_; }

  /// First index owned by part p (inclusive).
  Index lo(int p) const { return n_ * p / parts_; }
  /// One past the last index owned by part p.
  Index hi(int p) const { return n_ * (p + 1) / parts_; }
  Index local_size(int p) const { return hi(p) - lo(p); }

  /// The part owning global index i.
  int owner(Index i) const {
    PGB_ASSERT(i >= 0 && i < n_, "index out of distributed range");
    // Initial guess from the proportional formula, then fix up boundary
    // rounding (the guess is off by at most one).
    int p = static_cast<int>(
        static_cast<__int128>(i) * parts_ / (n_ > 0 ? n_ : 1));
    if (p >= parts_) p = parts_ - 1;
    while (i < lo(p)) --p;
    while (i >= hi(p)) ++p;
    return p;
  }

  bool operator==(const BlockDist1D& o) const = default;

 private:
  Index n_ = 0;
  int parts_ = 1;
};

/// 2-D block distribution over a rows x cols locale grid; locale ids are
/// row-major (as the paper's Listing 8 indexes them: l(1)*pc + i).
class BlockDist2D {
 public:
  BlockDist2D() = default;
  BlockDist2D(Index nrows, Index ncols, int prows, int pcols)
      : rowd_(nrows, prows), cold_(ncols, pcols) {}

  const BlockDist1D& rowd() const { return rowd_; }
  const BlockDist1D& cold() const { return cold_; }
  int prows() const { return rowd_.parts(); }
  int pcols() const { return cold_.parts(); }

  int locale_of(Index r, Index c) const {
    return rowd_.owner(r) * pcols() + cold_.owner(c);
  }

  /// Grid coordinates of locale id.
  int prow_of(int locale) const { return locale / pcols(); }
  int pcol_of(int locale) const { return locale % pcols(); }

  bool operator==(const BlockDist2D& o) const = default;

 private:
  BlockDist1D rowd_;
  BlockDist1D cold_;
};

}  // namespace pgb
