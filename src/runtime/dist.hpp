// Block distributions: the analogue of Chapel's Block dmap.
//
// BlockDist1D partitions an index range [0, n) "evenly" across `parts`
// (Chapel's formula: part p owns [n*p/parts, n*(p+1)/parts)). BlockDist2D
// composes two 1-D distributions over a 2-D locale grid, which is the
// layout the paper uses for sparse matrices (Section II-B).
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace pgb {

using Index = std::int64_t;

/// Live membership of a locale set: which *physical* locale currently
/// hosts each *logical* locale (block owner). Distributions keep
/// partitioning data by logical locale forever; degraded-mode recovery
/// (fault/rebuild.hpp) remaps a dead locale's logical id onto a
/// surviving host and bumps the membership epoch so cached views
/// (RemapView) revalidate. Fault-free the mapping is the identity and
/// every query collapses to the obvious answer.
class Membership {
 public:
  Membership() = default;
  explicit Membership(int n) : host_(static_cast<std::size_t>(n)) {
    PGB_REQUIRE(n >= 1, "membership needs at least one locale");
    for (int l = 0; l < n; ++l) host_[static_cast<std::size_t>(l)] = l;
    active_ = n;
  }

  int size() const { return static_cast<int>(host_.size()); }

  /// Physical locale currently hosting logical locale `l`.
  int host(int l) const { return host_[static_cast<std::size_t>(l)]; }

  /// Bumped by every remap/reset; cached views compare against it.
  std::uint64_t epoch() const { return epoch_; }

  /// True once any logical locale lives away from its identity host.
  bool remapped() const { return remapped_; }

  /// Number of distinct physical hosts still carrying logical locales
  /// (the surviving N-1 after a degraded-mode remap).
  int active() const { return active_; }

  /// Rehosts logical locale `logical` onto physical locale `physical`.
  void remap(int logical, int physical) {
    PGB_REQUIRE(logical >= 0 && logical < size(), "membership: bad logical id");
    PGB_REQUIRE(physical >= 0 && physical < size(),
                "membership: bad physical id");
    host_[static_cast<std::size_t>(logical)] = physical;
    ++epoch_;
    recount();
  }

  /// Back to the identity mapping (a fresh run on the same grid).
  void reset() {
    for (int l = 0; l < size(); ++l) host_[static_cast<std::size_t>(l)] = l;
    ++epoch_;
    recount();
  }

 private:
  void recount() {
    std::vector<char> seen(host_.size(), 0);
    active_ = 0;
    remapped_ = false;
    for (int l = 0; l < size(); ++l) {
      const int h = host_[static_cast<std::size_t>(l)];
      if (h != l) remapped_ = true;
      if (!seen[static_cast<std::size_t>(h)]) {
        seen[static_cast<std::size_t>(h)] = 1;
        ++active_;
      }
    }
  }

  std::vector<int> host_;
  std::uint64_t epoch_ = 0;
  int active_ = 0;
  bool remapped_ = false;
};

///// Membership-epoch-aware cached view: hot loops (SpMSpV gather/scatter,
/// the algo state machines) resolve block owner -> physical host through
/// it; the cached table refreshes itself when the membership epoch moves
/// (a recovery remap), so steady state is one epoch compare + one vector
/// load per query.
class RemapView {
 public:
  explicit RemapView(const Membership& m) : m_(&m) { refresh(); }

  int host(int logical) const {
    if (epoch_ != m_->epoch()) refresh();
    return host_[static_cast<std::size_t>(logical)];
  }

  /// True when any logical locale is co-hosted (degraded mode).
  bool remapped() const {
    if (epoch_ != m_->epoch()) refresh();
    return remapped_;
  }

 private:
  void refresh() const {
    epoch_ = m_->epoch();
    remapped_ = m_->remapped();
    host_.resize(static_cast<std::size_t>(m_->size()));
    for (int l = 0; l < m_->size(); ++l) {
      host_[static_cast<std::size_t>(l)] = m_->host(l);
    }
  }

  const Membership* m_;
  mutable std::uint64_t epoch_ = 0;
  mutable bool remapped_ = false;
  mutable std::vector<int> host_;
};

class BlockDist1D {
 public:
  BlockDist1D() = default;
  BlockDist1D(Index n, int parts) : n_(n), parts_(parts) {
    PGB_REQUIRE(n >= 0, "negative domain size");
    PGB_REQUIRE(parts >= 1, "need at least one part");
  }

  Index n() const { return n_; }
  int parts() const { return parts_; }

  /// First index owned by part p (inclusive).
  Index lo(int p) const { return n_ * p / parts_; }
  /// One past the last index owned by part p.
  Index hi(int p) const { return n_ * (p + 1) / parts_; }
  Index local_size(int p) const { return hi(p) - lo(p); }

  /// The part owning global index i.
  int owner(Index i) const {
    PGB_ASSERT(i >= 0 && i < n_, "index out of distributed range");
    // Initial guess from the proportional formula, then fix up boundary
    // rounding (the guess is off by at most one).
    int p = static_cast<int>(
        static_cast<__int128>(i) * parts_ / (n_ > 0 ? n_ : 1));
    if (p >= parts_) p = parts_ - 1;
    while (i < lo(p)) --p;
    while (i >= hi(p)) ++p;
    return p;
  }

  bool operator==(const BlockDist1D& o) const = default;

 private:
  Index n_ = 0;
  int parts_ = 1;
};

/// 2-D block distribution over a rows x cols locale grid; locale ids are
/// row-major (as the paper's Listing 8 indexes them: l(1)*pc + i).
class BlockDist2D {
 public:
  BlockDist2D() = default;
  BlockDist2D(Index nrows, Index ncols, int prows, int pcols)
      : rowd_(nrows, prows), cold_(ncols, pcols) {}

  const BlockDist1D& rowd() const { return rowd_; }
  const BlockDist1D& cold() const { return cold_; }
  int prows() const { return rowd_.parts(); }
  int pcols() const { return cold_.parts(); }

  int locale_of(Index r, Index c) const {
    return rowd_.owner(r) * pcols() + cold_.owner(c);
  }

  /// Grid coordinates of locale id.
  int prow_of(int locale) const { return locale / pcols(); }
  int pcol_of(int locale) const { return locale % pcols(); }

  bool operator==(const BlockDist2D& o) const = default;

 private:
  BlockDist1D rowd_;
  BlockDist1D cold_;
};

}  // namespace pgb
