#include "runtime/collectives.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pgb {

namespace {

// Members are *logical* locales; clocks and node placement belong to the
// physical hosts carrying them (identity until a degraded-mode remap).

/// Max clock among the members' hosts.
double members_time(LocaleGrid& grid, const std::vector<int>& members) {
  double t = 0.0;
  for (int m : members) t = std::max(t, grid.clock(grid.host_of(m)).now());
  return t;
}

void advance_members_to(LocaleGrid& grid, const std::vector<int>& members,
                        double t) {
  for (int m : members) grid.clock(grid.host_of(m)).advance_to(t);
}

/// Whether all members' hosts share one physical node (intra-node path).
bool all_same_node(const LocaleGrid& grid, const std::vector<int>& members) {
  for (std::size_t i = 1; i < members.size(); ++i) {
    if (!grid.same_node(grid.host_of(members[0]),
                        grid.host_of(members[i]))) {
      return false;
    }
  }
  return true;
}

/// Publishes one collective invocation to the grid metrics.
void count_collective(LocaleGrid& grid, const char* op, std::int64_t bytes) {
  grid.metrics().counter("collective.calls", {{"op", op}}).inc();
  grid.metrics().counter("collective.bytes", {{"op", op}}).inc(bytes);
}

}  // namespace

std::vector<int> row_members(const LocaleGrid& grid, int prow) {
  PGB_REQUIRE(prow >= 0 && prow < grid.rows(), "bad processor row");
  std::vector<int> m(static_cast<std::size_t>(grid.cols()));
  for (int c = 0; c < grid.cols(); ++c) m[static_cast<std::size_t>(c)] = prow * grid.cols() + c;
  return m;
}

std::vector<int> col_members(const LocaleGrid& grid, int pcol) {
  PGB_REQUIRE(pcol >= 0 && pcol < grid.cols(), "bad processor column");
  std::vector<int> m(static_cast<std::size_t>(grid.rows()));
  for (int r = 0; r < grid.rows(); ++r) m[static_cast<std::size_t>(r)] = r * grid.cols() + pcol;
  return m;
}

void broadcast(LocaleGrid& grid, const std::vector<int>& members,
               int root_index, std::int64_t bytes, CollectiveAlgo algo) {
  PGB_REQUIRE(!members.empty(), "broadcast: no members");
  PGB_REQUIRE(root_index >= 0 &&
                  root_index < static_cast<int>(members.size()),
              "broadcast: bad root index");
  if (members.size() == 1) return;
  count_collective(grid, "broadcast", bytes);
  const bool intra = all_same_node(grid, members);
  const auto& net = grid.net();
  const double start = members_time(grid, members);
  const int n = static_cast<int>(members.size());

  double finish;
  if (algo == CollectiveAlgo::kSerialSends) {
    // Root pushes one copy per peer, back to back.
    finish = start + (n - 1) * net.bulk(bytes, intra, grid.colocated());
  } else {
    // Binomial tree: ceil(log2 n) rounds, one transfer per round on the
    // critical path.
    const double rounds = std::ceil(std::log2(static_cast<double>(n)));
    finish = start + rounds * net.bulk(bytes, intra, grid.colocated());
  }
  advance_members_to(grid, members, finish);
}

void allgather(LocaleGrid& grid, const std::vector<int>& members,
               std::int64_t bytes_each, CollectiveAlgo algo) {
  PGB_REQUIRE(!members.empty(), "allgather: no members");
  if (members.size() == 1) return;
  count_collective(grid, "allgather",
                   bytes_each * static_cast<std::int64_t>(members.size()));
  const bool intra = all_same_node(grid, members);
  const auto& net = grid.net();
  const double start = members_time(grid, members);
  const int n = static_cast<int>(members.size());

  double finish;
  if (algo == CollectiveAlgo::kSerialSends) {
    // Hand-rolled schedule (Listing 8 in bulk form): every member pulls
    // the pieces in the same source order, so at any moment all n-1
    // requesters converge on one source, which serves them serially —
    // quadratic in the member count.
    finish = start + static_cast<double>(n - 1) * (n - 1) *
                         net.bulk(bytes_each, intra, grid.colocated());
  } else {
    // Recursive doubling: log2(n) rounds; round r moves 2^r * bytes_each.
    double t = 0.0;
    std::int64_t chunk = bytes_each;
    for (int covered = 1; covered < n; covered *= 2) {
      t += net.bulk(chunk, intra, grid.colocated());
      chunk *= 2;
    }
    finish = start + t;
  }
  advance_members_to(grid, members, finish);
}

void reduce_scatter(LocaleGrid& grid, const std::vector<int>& members,
                    std::int64_t bytes_total, CollectiveAlgo algo) {
  PGB_REQUIRE(!members.empty(), "reduce_scatter: no members");
  if (members.size() == 1) return;
  count_collective(grid, "reduce_scatter", bytes_total);
  const bool intra = all_same_node(grid, members);
  const auto& net = grid.net();
  const double start = members_time(grid, members);
  const int n = static_cast<int>(members.size());

  double finish;
  if (algo == CollectiveAlgo::kSerialSends) {
    // Every member ships a bytes_total/n chunk to each slice owner in the
    // same order; like the serial allgather, the aligned schedule
    // serializes at each destination — quadratic.
    finish = start + static_cast<double>(n - 1) * (n - 1) *
                         net.bulk(std::max<std::int64_t>(bytes_total / n, 1),
                                  intra, grid.colocated());
  } else {
    // Recursive halving: log2(n) rounds, halving volume each round.
    double t = 0.0;
    std::int64_t chunk = bytes_total / 2;
    for (int parts = 1; parts < n; parts *= 2) {
      t += net.bulk(std::max<std::int64_t>(chunk, 1), intra,
                    grid.colocated());
      chunk /= 2;
    }
    finish = start + t;
  }
  advance_members_to(grid, members, finish);
}

}  // namespace pgb
