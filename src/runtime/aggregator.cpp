#include "runtime/aggregator.hpp"

#include <cmath>

namespace pgb {

const char* to_string(CommMode m) {
  switch (m) {
    case CommMode::kFine:
      return "fine";
    case CommMode::kBulk:
      return "bulk";
    case CommMode::kAggregated:
      return "agg";
    case CommMode::kAuto:
      return "auto";
  }
  return "?";
}

CommMode parse_comm_mode(const std::string& s) {
  if (s == "fine") return CommMode::kFine;
  if (s == "bulk") return CommMode::kBulk;
  if (s == "agg" || s == "aggregated") return CommMode::kAggregated;
  if (s == "auto") return CommMode::kAuto;
  throw InvalidArgument(
      "comm mode must be one of: fine, bulk, agg (aggregated), auto; got: " +
      s);
}

AggChannel::AggChannel(LocaleCtx& ctx, AggConfig cfg)
    : ctx_(ctx), cfg_(cfg) {
  PGB_REQUIRE(cfg_.capacity >= 1, "aggregator capacity must be positive");
  PGB_REQUIRE(cfg_.contention >= 1.0, "contention multiplier must be >= 1");
  auto& grid = ctx.grid();
  epoch_ = grid.epoch();
  auto& mx = grid.metrics();
  m_messages_ = &mx.counter("agg.messages");
  m_bytes_ = &mx.counter("agg.bytes");
  m_path_messages_ = &mx.counter("comm.messages", {{"path", "agg"}});
  m_resends_ = &mx.counter("agg.resends");
  m_occ_put_ = &mx.histogram("agg.occupancy", {{"dir", "put"}});
  m_occ_get_ = &mx.histogram("agg.occupancy", {{"dir", "get"}});
}

void AggChannel::issue(int peer, double cost, std::int64_t msgs,
                       std::int64_t bytes, bool is_get, std::int64_t elems) {
  auto& grid = ctx_.grid();
  if (grid.epoch() != epoch_) return;  // constructed before a reset
  const std::int64_t seq = next_seq_++;
  const auto& hot = grid.hot();
  hot.logical_messages->inc(msgs);

  // Consult the fault plan: a dropped/corrupted flush is re-sent under
  // the same sequence number, a duplicated one is deduplicated by the
  // receiver. Each wire copy is real traffic; resends also re-occupy
  // the injection channel below.
  DeliveryOutcome out;
  FaultPlan* plan = grid.fault_plan();
  if (plan != nullptr) {
    out = plan_delivery(*plan, grid.retry_policy(), ctx_.host(),
                        grid.host_of(peer), ctx_.clock().now());
    hot.retries->inc(out.attempts - 1);
    hot.timeouts->inc(out.timeouts);
    if (out.drops > 0) hot.injected_drop->inc(out.drops);
    if (out.duplicates > 0) hot.injected_dup->inc(out.duplicates);
    if (out.corrupts > 0) hot.injected_corrupt->inc(out.corrupts);
    if (out.stalls > 0) hot.injected_stall->inc(out.stalls);
    if (out.attempts > 1) {
      stats_.resends += out.attempts - 1;
      m_resends_->inc(out.attempts - 1);
    }
    if (!out.delivered) {
      grid.metrics().counter("comm.undeliverable", {{"path", "agg"}}).inc();
    }
  }
  const std::int64_t wire = out.attempts + out.duplicates;

  ++stats_.flushes;
  stats_.messages += msgs * wire;
  stats_.bytes += bytes * wire;
  hot.agg_flushes->inc();
  hot.messages->inc(msgs * wire);
  hot.bytes->inc(bytes * wire);
  // Comm-matrix attribution mirrors the two hot counters above exactly
  // (wire multiplicity included) on physical hosts, preserving the
  // matrix-totals == comm.messages/comm.bytes conservation invariant.
  grid.comm_matrix_add("agg", ctx_.host(), grid.host_of(peer), msgs * wire,
                       bytes * wire);
  m_messages_->inc(msgs * wire);
  m_bytes_->inc(bytes * wire);
  m_path_messages_->inc(msgs * wire);
  if (elems >= 0) (is_get ? m_occ_get_ : m_occ_put_)->observe(elems);

  auto* session = grid.trace_session();
  if (session != nullptr && session->detail()) {
    session->instant(ctx_.locale(), is_get ? "agg.flush_get" : "agg.flush_put",
                     ctx_.clock().now(),
                     {{"peer", std::to_string(peer)},
                      {"bytes", std::to_string(bytes)},
                      {"elems", std::to_string(elems)},
                      {"seq", std::to_string(seq)},
                      {"attempts", std::to_string(out.attempts)}});
  }

  // Duplicates overlap the original; serialized attempts plus injected
  // stall/retry waits are what this flush owes the clock.
  const double total_cost = static_cast<double>(out.attempts) * cost +
                            out.stall_time + out.wait_time;
  SimClock& clk = ctx_.clock();
  if (!cfg_.double_buffer) {
    clk.advance(total_cost);
    inflight_end_ = clk.now();
    return;
  }
  // Double buffering: the task hands the full buffer to the transport —
  // paying only the software handoff — and keeps filling the spare. The
  // transfer occupies the single injection channel: it starts once the
  // previous one finished and completes `cost` later; drain() joins the
  // tail. Compute between flushes therefore hides transfer time.
  const double start = std::max(clk.now(), inflight_end_);
  inflight_end_ = start + total_cost;
  clk.advance(grid.net().params().fine_grain_overhead);
}

void AggChannel::flush_put(int peer, std::int64_t bytes,
                           std::int64_t elems) {
  auto& grid = ctx_.grid();
  // Host-level locality: a logical peer co-hosted after a degraded-mode
  // remap is a memcpy, not a flush on the wire. The self side resolves
  // through the ctx's epoch-cached host.
  if (grid.host_of(peer) == ctx_.host()) {
    ++stats_.local_flushes;
    return;
  }
  const bool intra = grid.same_node(ctx_.host(), grid.host_of(peer));
  const int colo = grid.colocated();
  const auto& net = grid.net();
  const double cost = net.round_trip(cfg_.header_bytes, intra, colo) +
                      cfg_.contention * net.bulk(bytes, intra, colo);
  // Header round trip (2 one-way messages) + the payload bulk.
  issue(peer, cost, 3, bytes, /*is_get=*/false, elems);
}

void AggChannel::flush_get(int peer, std::int64_t req_bytes,
                           std::int64_t resp_bytes, std::int64_t elems) {
  auto& grid = ctx_.grid();
  if (grid.host_of(peer) == ctx_.host()) {
    ++stats_.local_flushes;
    return;
  }
  const bool intra = grid.same_node(ctx_.host(), grid.host_of(peer));
  const int colo = grid.colocated();
  const auto& net = grid.net();
  double cost = net.round_trip(cfg_.header_bytes, intra, colo) +
                cfg_.contention * net.bulk(resp_bytes, intra, colo);
  std::int64_t msgs = 3;  // header round trip + response bulk
  if (req_bytes > 0) {
    cost += cfg_.contention * net.bulk(req_bytes, intra, colo);
    ++msgs;  // the request-batch bulk
  }
  issue(peer, cost, msgs, req_bytes + resp_bytes, /*is_get=*/true, elems);
}

void AggChannel::get_elems(int peer, std::int64_t count,
                           std::int64_t bytes_each) {
  if (ctx_.grid().host_of(peer) == ctx_.host() || count <= 0) {
    return;
  }
  stats_.pushed += count;
  for (std::int64_t left = count; left > 0; left -= cfg_.capacity) {
    const std::int64_t chunk = std::min(left, cfg_.capacity);
    flush_get(peer, 0, chunk * bytes_each, chunk);
  }
}

void AggChannel::drain() {
  if (ctx_.grid().epoch() != epoch_) return;  // stale epoch: nothing owed
  ctx_.clock().advance_to(inflight_end_);
}

}  // namespace pgb
