// Modeled collective-communication operations.
//
// The paper's Listing 8 hand-rolls its gathers and scatters from serial
// point-to-point copies, and its discussion (Section IV) calls out MPI
// team collectives as a missing Chapel facility that "is expected to
// improve the productivity and performance of graph algorithms". This
// module provides that facility for the simulated runtime: broadcast,
// allgather and reduce-scatter over a set of locales, with either the
// naive serial-send schedule (what hand-rolled Chapel code does) or the
// logarithmic schedules MPI implementations use.
//
// These functions only advance clocks — data movement stays with the
// caller (which already has shared-address-space access), exactly like
// the LocaleCtx charging helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/locale_grid.hpp"

namespace pgb {

enum class CollectiveAlgo {
  kSerialSends,  ///< root/members send one message at a time (hand-rolled)
  kTree,         ///< binomial tree / recursive doubling (MPI-style)
};

/// One-to-all broadcast of `bytes` from members[root_index] to every
/// other member. Advances all members' clocks to completion.
void broadcast(LocaleGrid& grid, const std::vector<int>& members,
               int root_index, std::int64_t bytes, CollectiveAlgo algo);

/// All-to-all concatenation: every member contributes bytes_each and
/// ends up with the full concatenation (the paper's "gather x along the
/// processor row" is exactly an allgather over the row's locales).
void allgather(LocaleGrid& grid, const std::vector<int>& members,
               std::int64_t bytes_each, CollectiveAlgo algo);

/// Each member starts with a full-length buffer of `bytes_total`; the
/// element-wise reduction is computed and scattered so each member ends
/// with bytes_total / |members| of the result (the distributed SpMSpV /
/// SpMV output accumulation along a processor column).
void reduce_scatter(LocaleGrid& grid, const std::vector<int>& members,
                    std::int64_t bytes_total, CollectiveAlgo algo);

/// Locale ids of processor row r / column c of the grid.
std::vector<int> row_members(const LocaleGrid& grid, int prow);
std::vector<int> col_members(const LocaleGrid& grid, int pcol);

}  // namespace pgb
