// The locale grid: pgas-graphblas's stand-in for Chapel's locales on a
// distributed machine.
//
// A LocaleGrid is a 2-D arrangement of simulated locales (the paper uses
// 2-D block distributions throughout). Each locale has its own simulated
// clock. Kernels execute for real in this process; parallel constructs
// (`coforall_locales`, per-locale parallel regions) and the comm-charging
// helpers advance the clocks according to the machine model, so
// `grid.time()` after an operation is the modeled distributed-memory
// runtime of that operation.
//
// Placement: `locales_per_node` co-locates several locales on one modeled
// node (sharing memory bandwidth and paying AM-handler contention), which
// reproduces the paper's Fig 10 experiment.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault.hpp"
#include "machine/machine_model.hpp"
#include "runtime/dist.hpp"
#include "runtime/inspector.hpp"
#include "machine/network_model.hpp"
#include "machine/parallel_model.hpp"
#include "machine/sim_clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace pgb {

struct Locale {
  int id = 0;
  int row = 0;
  int col = 0;
  int node = 0;  ///< physical node hosting this locale
};

struct GridConfig {
  int rows = 1;
  int cols = 1;
  int threads_per_locale = 1;
  int locales_per_node = 1;
  MachineModel model = MachineModel::edison();
};

/// Grid-wide tally of modeled communication events. Since the metrics
/// registry became the single bookkeeping path, this is a *view*: the
/// LocaleCtx comm helpers and the aggregation layer publish into the
/// grid's `obs::MetricsRegistry` ("comm.messages", "comm.bytes",
/// "comm.bulks", "agg.flushes"), and `grid.comm_stats()` snapshots those
/// counters into this struct. Reset together with the clocks.
struct CommStats {
  std::int64_t messages = 0;     ///< one-way network messages (a round
                                 ///< trip counts 2, a bulk counts 1)
  std::int64_t bytes = 0;        ///< payload bytes moved
  std::int64_t bulks = 0;        ///< bulk transfers among `messages`
  std::int64_t agg_flushes = 0;  ///< aggregator buffer flushes
};

class LocaleGrid;

/// Handle passed to per-locale bodies; provides cost-charging helpers.
class LocaleCtx {
 public:
  LocaleCtx(LocaleGrid& grid, int locale);

  int locale() const { return locale_; }
  LocaleGrid& grid() { return grid_; }

  /// The clock of the *physical* locale hosting this logical locale:
  /// after a degraded-mode remap, work charged here lands on the buddy
  /// host that adopted the dead locale's blocks. Identity mapping makes
  /// this the locale's own clock.
  SimClock& clock();

  /// The physical host of this logical locale, cached against the
  /// membership epoch: steady state is one epoch compare instead of a
  /// grid.host_of() table walk. Every clock()/remote_* charge resolves
  /// its own side through this cache, which hoists the repeated
  /// translation out of the per-element kernel loops; a degraded-mode
  /// remap bumps the epoch and refreshes it on next use.
  int host() const;

  /// Scales the modeled time of parallel_region/serial_region charges
  /// while set (1.0 = neutral). The straggler work-shedding hook in
  /// SpMSpV uses it to move a fraction of a flagged straggler's local
  /// multiply onto a helper's clock without touching the real compute.
  void set_charge_scale(double s) {
    PGB_REQUIRE(s > 0.0 && s <= 1.0, "charge scale must be in (0, 1]");
    charge_scale_ = s;
  }
  double charge_scale() const { return charge_scale_; }

  /// Charges a forall-style parallel region executed with the locale's
  /// threads; includes the task-spawn burden.
  void parallel_region(CostVector cost);

  /// Charges single-task work (no spawn).
  void serial_region(const CostVector& cost);

  // -- communication charges (data itself is read/written directly by the
  //    caller; these advance this locale's clock per the network model) --

  /// Element-wise access to `count` remote elements, each needing
  /// `rts_per_elem` dependent round trips (e.g. remote binary search).
  /// `contention` multiplies the time when several locales hammer the
  /// same source simultaneously (its AM handler serializes them).
  void remote_chain(int peer, std::int64_t count, double rts_per_elem,
                    std::int64_t bytes_each, double contention = 1.0);

  /// `count` independent small messages to `peer` (overlapped).
  void remote_msgs(int peer, std::int64_t count, std::int64_t bytes_each,
                   double contention = 1.0);

  /// One bulk transfer.
  void remote_bulk(int peer, std::int64_t bytes);

  /// One blocking round trip (e.g. reading a remote scalar such as a
  /// domain's size).
  void remote_rt(int peer, std::int64_t bytes_back);

 private:
  /// Publishes one comm event to the grid's metrics (totals + the
  /// per-path counter family) and, when a detail-level trace session is
  /// attached, records an instant event on this locale's track.
  void comm_event(const char* path, int peer, std::int64_t msgs,
                  std::int64_t bytes, std::int64_t bulks);

  /// The delivery funnel every remote_* helper ends in: counts the
  /// logical intent, and — when a fault plan is attached — runs the
  /// transfer through it, charging each wire attempt (retries re-pay
  /// `cost` through the network model, failed attempts add the ack
  /// timeout, backoffs wait in between) and publishing retry/timeout/
  /// injection counters. Without a plan it is exactly one comm_event
  /// plus one clock advance.
  void transfer(const char* path, int peer, std::int64_t msgs,
                std::int64_t bytes, std::int64_t bulks, double cost);

  LocaleGrid& grid_;
  int locale_;
  double charge_scale_ = 1.0;
  /// host() cache; ~0 epoch forces the first lookup.
  mutable std::uint64_t host_epoch_ = ~std::uint64_t{0};
  mutable int host_ = -1;
};

class LocaleGrid {
 public:
  explicit LocaleGrid(GridConfig cfg);

  /// Single-locale (shared-memory) grid with `threads` threads.
  static LocaleGrid single(int threads,
                           MachineModel model = MachineModel::edison());

  /// A near-square prows x pcols grid over `nlocales` (prows <= pcols),
  /// matching how the paper lays out locales for 2-D distributions.
  static LocaleGrid square(int nlocales, int threads_per_locale,
                           int locales_per_node = 1,
                           MachineModel model = MachineModel::edison());

  int num_locales() const { return static_cast<int>(locales_.size()); }
  int rows() const { return cfg_.rows; }
  int cols() const { return cfg_.cols; }
  int threads() const { return cfg_.threads_per_locale; }

  /// Change the per-locale thread count (benches sweep threads over one
  /// generated workload; data placement is unaffected). The value is
  /// re-validated against the machine model: the parallel model prices
  /// moderate oversubscription (threads beyond a core's share earn only
  /// `oversubscribe_gain`), but a request beyond kOversubscribeCap times
  /// this locale's core share is a sweep bug — it is clamped with a
  /// warning instead of silently modeling thousands of phantom threads.
  void set_threads(int threads);

  /// Largest accepted threads-per-locale multiplier over the locale's
  /// core share (model cores / locales per node).
  static constexpr int kOversubscribeCap = 4;

  /// The clamp bound set_threads enforces for this grid's model and
  /// placement.
  int max_threads() const {
    const int share =
        std::max(1, cfg_.model.node.cores / cfg_.locales_per_node);
    return kOversubscribeCap * share;
  }
  int colocated() const { return cfg_.locales_per_node; }
  const Locale& locale(int id) const { return locales_[id]; }
  bool same_node(int a, int b) const {
    return locales_[a].node == locales_[b].node;
  }

  // -- membership: logical locale -> physical host -----------------------

  /// The live logical->physical mapping. Identity until degraded-mode
  /// recovery remaps a dead locale onto a survivor. Distributions and
  /// vectors keep indexing blocks by *logical* locale; every comm helper
  /// and clock charge translates through this mapping, so co-hosted
  /// logicals exchange data for free and both charge the same clock.
  const Membership& membership() const { return membership_; }

  /// Physical locale currently hosting logical locale `l`.
  int host_of(int l) const { return membership_.host(l); }
  std::uint64_t membership_epoch() const { return membership_.epoch(); }

  /// Rehosts logical locale `logical` on `physical` (degraded-mode
  /// recovery after `logical`'s identity host died). Bumps the
  /// membership epoch so RemapViews revalidate.
  void remap_locale(int logical, int physical);

  /// Back to the identity mapping (fresh run on a reused grid).
  void restore_membership() { membership_.reset(); }

  // -- straggler-aware barriers ------------------------------------------

  /// Enables straggler detection at barriers: when the clock skew
  /// (max - min over active hosts at barrier entry) exceeds `seconds`,
  /// the slowest host is flagged (`straggler.detected` counter + per-host
  /// hit count consulted by the SpMSpV shedding hook). 0 disables
  /// detection; the `barrier.skew` histogram is also recorded whenever a
  /// fault plan is attached, so chaos runs surface skew unprompted.
  void set_straggler_threshold(double seconds) {
    PGB_REQUIRE(seconds >= 0.0, "straggler threshold must be >= 0");
    straggler_threshold_ = seconds;
  }
  double straggler_threshold() const { return straggler_threshold_; }

  /// Times physical locale `phys` was flagged the slowest-at-barrier
  /// straggler since the last reset.
  std::int64_t straggler_hits(int phys) const {
    return straggler_hits_[static_cast<std::size_t>(phys)];
  }

  const MachineModel& model() const { return cfg_.model; }
  const NetworkModel& net() const { return net_; }
  SimClock& clock(int l) { return clocks_[l]; }
  Trace& trace() { return trace_; }

  /// Modeled fixed cost of one parallel region — the task-spawn floor an
  /// empty `forall` pays (LocaleCtx::parallel_region adds a
  /// kTaskSpawn(threads) term to every region). Kernels whose bulk path
  /// spawns a packing region per destination hand this to the inspector
  /// as SiteFootprint::bulk_pair_overhead; at small batch sizes this
  /// floor, not the wire transfer, is what decides bulk vs aggregated.
  double region_floor() const {
    CostVector c;
    c.add(CostKind::kTaskSpawn, threads());
    return region_time(cfg_.model.node, c, threads(), colocated());
  }

  /// Snapshot of the registry's comm counters (see CommStats).
  CommStats comm_stats() const {
    return CommStats{hot_.messages->value, hot_.bytes->value,
                     hot_.bulks->value, hot_.agg_flushes->value};
  }

  /// The grid-wide metrics registry every layer publishes into.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// The grid's inspector–executor state (CommMode::kAuto). Re-bound to
  /// this grid's registry/model/membership on every access, so the
  /// cached pointers survive a grid move; all its counters register
  /// lazily, on first kAuto use, keeping fault-free metric key sets (and
  /// the committed profile baselines) unchanged.
  Inspector& inspector() {
    inspector_.bind(&metrics_, &net_, &membership_, colocated());
    return inspector_;
  }

  /// Attach (or detach, with nullptr) a trace session; not owned. While
  /// attached, runtime constructs and instrumented kernels record spans
  /// and instants stamped with the locale clocks. The first
  /// num_locales() track ids are reserved for the locale tracks;
  /// named tracks (per-query tracks) allocate above them.
  void set_trace_session(obs::TraceSession* session) {
    trace_session_ = session;
    if (session != nullptr) session->reserve_tracks(num_locales());
  }
  obs::TraceSession* trace_session() { return trace_session_; }

  /// Samples the grid-wide comm counters into the attached trace
  /// session's counter tracks, stamped at the current simulated time
  /// (no-op without a session). Called by obs::GridSpan at phase open
  /// and close, so rate changes land exactly at span boundaries on the
  /// exported timeline. Tracks are cumulative counters, hence monotone
  /// non-decreasing within an epoch.
  void sample_counter_tracks();

  /// Attach (or detach, with nullptr) a fault plan; not owned. While
  /// attached, every comm helper and aggregator flush consults it:
  /// injected faults charge retries/timeouts per `retry_policy()`, and
  /// coforall dispatch throws LocaleFailed when a locale's kill time has
  /// passed (recovery drivers catch it; see fault/recovery.hpp).
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }
  FaultPlan* fault_plan() { return fault_plan_; }

  /// Delivery-guarantee knobs used while a fault plan is attached.
  void set_retry_policy(const RetryPolicy& rp) {
    rp.validate();
    retry_ = rp;
  }
  const RetryPolicy& retry_policy() const { return retry_; }

  // -- comm matrix: per src->dst physical-host traffic -------------------
  //
  // When enabled, every wire message the comm funnel counts into
  // `comm.messages`/`comm.bytes` (LocaleCtx::comm_event per attempt, and
  // AggChannel::issue per wire copy) is also attributed to one
  // (src, dst) cell, keyed by *physical* hosts: the sender charges
  // through LocaleCtx::host() and the receiver through host_of(peer), so
  // after a degraded-mode remap the adopted logical locale's traffic
  // lands on its buddy host's row/column, never on the dead host's.
  // Co-hosted transfers never reach the funnel (they are free), so the
  // diagonal is structurally zero and the matrix totals equal the
  // registry's comm.messages/comm.bytes counters exactly — the
  // conservation invariant the tests and CI enforce. Attribution is also
  // kept per comm path (chain/msgs/bulk/rt/agg), the per-site dimension
  // the exporter emits under "by_path".

  /// Comm paths the matrix attributes separately (index order is the
  /// export order).
  static constexpr int kCommPaths = 5;
  static const char* comm_path_name(int p) {
    static const char* kNames[kCommPaths] = {"agg", "bulk", "chain", "msgs",
                                             "rt"};
    return kNames[p];
  }

  /// Switches matrix accumulation on (lazily allocates the dense
  /// per-path matrices). Off by default so fault-free runs pay nothing.
  void enable_comm_matrix();
  bool comm_matrix_enabled() const { return comm_matrix_on_; }

  /// Adds one funnel event to cell (src, dst) of `path`'s matrix; no-op
  /// while disabled. src/dst are physical hosts.
  void comm_matrix_add(const char* path, int src, int dst, std::int64_t msgs,
                       std::int64_t bytes) {
    if (!comm_matrix_on_) return;
    comm_matrix_add_slow(path, src, dst, msgs, bytes);
  }

  /// Cell accessors, summed over paths.
  std::int64_t comm_matrix_messages(int src, int dst) const;
  std::int64_t comm_matrix_bytes(int src, int dst) const;
  std::int64_t comm_matrix_total_messages() const;
  std::int64_t comm_matrix_total_bytes() const;

  /// Stable-format exports (see docs/ARCHITECTURE.md for the schema).
  std::string comm_matrix_json() const;
  std::string comm_matrix_csv() const;

  /// Writes the matrix to `path` (CSV when the name ends in ".csv", JSON
  /// otherwise) and publishes the registry counter family
  /// `comm.matrix.messages{dst=,src=}` / `comm.matrix.bytes{dst=,src=}`
  /// for the nonzero cells. Throws (exit 2 in the tools) on an
  /// unwritable path.
  void write_comm_matrix(const std::string& path);

  /// Publishes the nonzero cells into the metrics registry (idempotent:
  /// counters are raised to the current cell values). Lazy — only runs
  /// with the matrix enabled — so fault-free metric key sets and the
  /// committed profile baselines are unchanged.
  void publish_comm_matrix();

  /// Bumped by reset(). Charging objects that can outlive a reset (the
  /// aggregation channels) capture the epoch at construction and go
  /// quiet when it no longer matches, so late destructor flushes cannot
  /// leak modeled time or stats into the new epoch.
  std::uint64_t epoch() const { return epoch_; }

  /// Max over all locale clocks: the grid's current simulated time.
  double time() const;

  void reset() {
    for (auto& c : clocks_) c.reset();
    trace_.clear();
    metrics_.reset();
    if (trace_session_ != nullptr) trace_session_->clear();
    membership_.reset();
    inspector_.reset();
    std::fill(straggler_hits_.begin(), straggler_hits_.end(), 0);
    std::fill(cm_msgs_.begin(), cm_msgs_.end(), 0);
    std::fill(cm_bytes_.begin(), cm_bytes_.end(), 0);
    ++epoch_;
  }

  /// Chapel's `coforall loc in Locales do on loc { ... }`: the initiator
  /// (locale 0) spawns a task on every locale — serialized fork charges —
  /// then all join at a barrier. The body runs once per locale.
  void coforall_locales(const std::function<void(LocaleCtx&)>& body);

  /// Advance every clock to the common max plus barrier cost; returns the
  /// synchronized time.
  double barrier_all();

  /// Cached handles to the hot registry counters, looked up once at
  /// construction so the per-event cost is a pointer bump.
  struct HotCounters {
    obs::Counter* messages = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* bulks = nullptr;
    obs::Counter* agg_flushes = nullptr;
    obs::Counter* parallel_regions = nullptr;
    obs::Counter* coforalls = nullptr;
    obs::Counter* barriers = nullptr;
    // Delivery-guarantee accounting (fault plane). comm.messages counts
    // every wire attempt; comm.logical_messages counts intents, so the
    // two are equal exactly when nothing was retried or duplicated.
    obs::Counter* logical_messages = nullptr;  ///< comm.logical_messages
    obs::Counter* retries = nullptr;           ///< comm.retries
    obs::Counter* timeouts = nullptr;          ///< comm.timeouts
    obs::Counter* injected_drop = nullptr;     ///< fault.injected{kind=drop}
    obs::Counter* injected_dup = nullptr;      ///< fault.injected{kind=dup}
    obs::Counter* injected_corrupt = nullptr;  ///< ...{kind=corrupt}
    obs::Counter* injected_stall = nullptr;    ///< ...{kind=stall}
  };
  const HotCounters& hot() const { return hot_; }

  // Copies would leave the copy's cached counter handles pointing into
  // the source's registry, so forbid copying. Moves are fine: the
  // registry's node-based storage keeps every cached handle valid when
  // ownership transfers.
  LocaleGrid(const LocaleGrid&) = delete;
  LocaleGrid& operator=(const LocaleGrid&) = delete;
  LocaleGrid(LocaleGrid&&) = default;
  LocaleGrid& operator=(LocaleGrid&&) = default;

 private:
  void comm_matrix_add_slow(const char* path, int src, int dst,
                            std::int64_t msgs, std::int64_t bytes);

  GridConfig cfg_;
  std::vector<Locale> locales_;
  std::vector<SimClock> clocks_;
  NetworkModel net_;
  Trace trace_;
  obs::MetricsRegistry metrics_;
  HotCounters hot_;
  obs::TraceSession* trace_session_ = nullptr;
  FaultPlan* fault_plan_ = nullptr;
  RetryPolicy retry_;
  Membership membership_;
  Inspector inspector_;
  std::vector<std::int64_t> straggler_hits_;
  /// Comm matrix storage: [path][src][dst] dense, allocated on enable.
  bool comm_matrix_on_ = false;
  std::vector<std::int64_t> cm_msgs_;
  std::vector<std::int64_t> cm_bytes_;
  double straggler_threshold_ = 0.0;
  bool warned_thread_clamp_ = false;
  std::uint64_t epoch_ = 0;
};

}  // namespace pgb
