// The locale grid: pgas-graphblas's stand-in for Chapel's locales on a
// distributed machine.
//
// A LocaleGrid is a 2-D arrangement of simulated locales (the paper uses
// 2-D block distributions throughout). Each locale has its own simulated
// clock. Kernels execute for real in this process; parallel constructs
// (`coforall_locales`, per-locale parallel regions) and the comm-charging
// helpers advance the clocks according to the machine model, so
// `grid.time()` after an operation is the modeled distributed-memory
// runtime of that operation.
//
// Placement: `locales_per_node` co-locates several locales on one modeled
// node (sharing memory bandwidth and paying AM-handler contention), which
// reproduces the paper's Fig 10 experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "machine/machine_model.hpp"
#include "machine/network_model.hpp"
#include "machine/parallel_model.hpp"
#include "machine/sim_clock.hpp"
#include "util/error.hpp"

namespace pgb {

struct Locale {
  int id = 0;
  int row = 0;
  int col = 0;
  int node = 0;  ///< physical node hosting this locale
};

struct GridConfig {
  int rows = 1;
  int cols = 1;
  int threads_per_locale = 1;
  int locales_per_node = 1;
  MachineModel model = MachineModel::edison();
};

/// Grid-wide tally of modeled communication events, accumulated by the
/// LocaleCtx comm helpers and by the aggregation layer
/// (runtime/aggregator.hpp). Benches read it to report message-count
/// reductions alongside modeled time; reset together with the clocks.
struct CommStats {
  std::int64_t messages = 0;     ///< one-way network messages (a round
                                 ///< trip counts 2, a bulk counts 1)
  std::int64_t bytes = 0;        ///< payload bytes moved
  std::int64_t bulks = 0;        ///< bulk transfers among `messages`
  std::int64_t agg_flushes = 0;  ///< aggregator buffer flushes
};

class LocaleGrid;

/// Handle passed to per-locale bodies; provides cost-charging helpers.
class LocaleCtx {
 public:
  LocaleCtx(LocaleGrid& grid, int locale);

  int locale() const { return locale_; }
  LocaleGrid& grid() { return grid_; }
  SimClock& clock();

  /// Charges a forall-style parallel region executed with the locale's
  /// threads; includes the task-spawn burden.
  void parallel_region(CostVector cost);

  /// Charges single-task work (no spawn).
  void serial_region(const CostVector& cost);

  // -- communication charges (data itself is read/written directly by the
  //    caller; these advance this locale's clock per the network model) --

  /// Element-wise access to `count` remote elements, each needing
  /// `rts_per_elem` dependent round trips (e.g. remote binary search).
  /// `contention` multiplies the time when several locales hammer the
  /// same source simultaneously (its AM handler serializes them).
  void remote_chain(int peer, std::int64_t count, double rts_per_elem,
                    std::int64_t bytes_each, double contention = 1.0);

  /// `count` independent small messages to `peer` (overlapped).
  void remote_msgs(int peer, std::int64_t count, std::int64_t bytes_each,
                   double contention = 1.0);

  /// One bulk transfer.
  void remote_bulk(int peer, std::int64_t bytes);

  /// One blocking round trip (e.g. reading a remote scalar such as a
  /// domain's size).
  void remote_rt(int peer, std::int64_t bytes_back);

 private:
  LocaleGrid& grid_;
  int locale_;
};

class LocaleGrid {
 public:
  explicit LocaleGrid(GridConfig cfg);

  /// Single-locale (shared-memory) grid with `threads` threads.
  static LocaleGrid single(int threads,
                           MachineModel model = MachineModel::edison());

  /// A near-square prows x pcols grid over `nlocales` (prows <= pcols),
  /// matching how the paper lays out locales for 2-D distributions.
  static LocaleGrid square(int nlocales, int threads_per_locale,
                           int locales_per_node = 1,
                           MachineModel model = MachineModel::edison());

  int num_locales() const { return static_cast<int>(locales_.size()); }
  int rows() const { return cfg_.rows; }
  int cols() const { return cfg_.cols; }
  int threads() const { return cfg_.threads_per_locale; }

  /// Change the per-locale thread count (benches sweep threads over one
  /// generated workload; data placement is unaffected).
  void set_threads(int threads) {
    PGB_REQUIRE(threads >= 1, "need at least one thread");
    cfg_.threads_per_locale = threads;
  }
  int colocated() const { return cfg_.locales_per_node; }
  const Locale& locale(int id) const { return locales_[id]; }
  bool same_node(int a, int b) const {
    return locales_[a].node == locales_[b].node;
  }

  const MachineModel& model() const { return cfg_.model; }
  const NetworkModel& net() const { return net_; }
  SimClock& clock(int l) { return clocks_[l]; }
  Trace& trace() { return trace_; }
  CommStats& comm_stats() { return comm_stats_; }
  const CommStats& comm_stats() const { return comm_stats_; }

  /// Max over all locale clocks: the grid's current simulated time.
  double time() const;

  void reset() {
    for (auto& c : clocks_) c.reset();
    trace_.clear();
    comm_stats_ = CommStats{};
  }

  /// Chapel's `coforall loc in Locales do on loc { ... }`: the initiator
  /// (locale 0) spawns a task on every locale — serialized fork charges —
  /// then all join at a barrier. The body runs once per locale.
  void coforall_locales(const std::function<void(LocaleCtx&)>& body);

  /// Advance every clock to the common max plus barrier cost; returns the
  /// synchronized time.
  double barrier_all();

 private:
  GridConfig cfg_;
  std::vector<Locale> locales_;
  std::vector<SimClock> clocks_;
  NetworkModel net_;
  Trace trace_;
  CommStats comm_stats_;
};

}  // namespace pgb
