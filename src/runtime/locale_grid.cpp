#include "runtime/locale_grid.hpp"

#include <algorithm>
#include <cmath>

namespace pgb {

LocaleCtx::LocaleCtx(LocaleGrid& grid, int locale)
    : grid_(grid), locale_(locale) {
  PGB_REQUIRE(locale >= 0 && locale < grid.num_locales(),
              "locale id out of range");
}

SimClock& LocaleCtx::clock() { return grid_.clock(locale_); }

void LocaleCtx::parallel_region(CostVector cost) {
  cost.add(CostKind::kTaskSpawn, grid_.threads());
  clock().advance(region_time(grid_.model().node, cost, grid_.threads(),
                              grid_.colocated()));
}

void LocaleCtx::serial_region(const CostVector& cost) {
  clock().advance(
      region_time(grid_.model().node, cost, 1, grid_.colocated()));
}

void LocaleCtx::remote_chain(int peer, std::int64_t count,
                             double rts_per_elem, std::int64_t bytes_each,
                             double contention) {
  if (peer == locale_) return;  // local access: caller charges node costs
  auto& cs = grid_.comm_stats();
  // Each element sends one payload message after rts_per_elem dependent
  // round trips (2 one-way messages each).
  cs.messages += count + std::llround(static_cast<double>(count) * 2.0 *
                                      rts_per_elem);
  cs.bytes += count * bytes_each;
  clock().advance(contention *
                  grid_.net().dependent_chain(
                      count, rts_per_elem, bytes_each,
                      grid_.same_node(locale_, peer), grid_.colocated()));
}

void LocaleCtx::remote_msgs(int peer, std::int64_t count,
                            std::int64_t bytes_each, double contention) {
  if (peer == locale_) return;
  auto& cs = grid_.comm_stats();
  cs.messages += count;
  cs.bytes += count * bytes_each;
  clock().advance(contention *
                  grid_.net().overlapped_messages(
                      count, bytes_each, grid_.same_node(locale_, peer),
                      grid_.colocated()));
}

void LocaleCtx::remote_bulk(int peer, std::int64_t bytes) {
  if (peer == locale_) return;
  auto& cs = grid_.comm_stats();
  cs.messages += 1;
  cs.bulks += 1;
  cs.bytes += bytes;
  clock().advance(grid_.net().bulk(bytes, grid_.same_node(locale_, peer),
                                   grid_.colocated()));
}

void LocaleCtx::remote_rt(int peer, std::int64_t bytes_back) {
  if (peer == locale_) return;
  auto& cs = grid_.comm_stats();
  cs.messages += 2;
  cs.bytes += bytes_back;
  clock().advance(grid_.net().round_trip(
      bytes_back, grid_.same_node(locale_, peer), grid_.colocated()));
}

LocaleGrid::LocaleGrid(GridConfig cfg) : cfg_(cfg), net_(cfg.model.net) {
  PGB_REQUIRE(cfg.rows >= 1 && cfg.cols >= 1, "grid must be at least 1x1");
  PGB_REQUIRE(cfg.threads_per_locale >= 1, "need at least one thread");
  PGB_REQUIRE(cfg.locales_per_node >= 1, "need at least one locale per node");
  const int n = cfg.rows * cfg.cols;
  locales_.reserve(n);
  for (int id = 0; id < n; ++id) {
    locales_.push_back(Locale{.id = id,
                              .row = id / cfg.cols,
                              .col = id % cfg.cols,
                              .node = id / cfg.locales_per_node});
  }
  clocks_.resize(n);
}

LocaleGrid LocaleGrid::single(int threads, MachineModel model) {
  return LocaleGrid(GridConfig{.rows = 1,
                               .cols = 1,
                               .threads_per_locale = threads,
                               .locales_per_node = 1,
                               .model = model});
}

LocaleGrid LocaleGrid::square(int nlocales, int threads_per_locale,
                              int locales_per_node, MachineModel model) {
  PGB_REQUIRE(nlocales >= 1, "need at least one locale");
  int rows = static_cast<int>(std::sqrt(static_cast<double>(nlocales)));
  while (rows > 1 && nlocales % rows != 0) --rows;
  const int cols = nlocales / rows;
  return LocaleGrid(GridConfig{.rows = rows,
                               .cols = cols,
                               .threads_per_locale = threads_per_locale,
                               .locales_per_node = locales_per_node,
                               .model = model});
}

double LocaleGrid::time() const {
  double t = 0.0;
  for (const auto& c : clocks_) t = std::max(t, c.now());
  return t;
}

void LocaleGrid::coforall_locales(const std::function<void(LocaleCtx&)>& body) {
  const double t0 = clocks_[0].now();
  double spawn_accum = 0.0;
  for (int l = 0; l < num_locales(); ++l) {
    if (l != 0) {
      spawn_accum += net_.fork(same_node(0, l), colocated());
      clocks_[l].advance_to(t0 + spawn_accum);
    }
    LocaleCtx ctx(*this, l);
    body(ctx);
  }
  barrier_all();
}

double LocaleGrid::barrier_all() {
  const double t = time() + net_.barrier(num_locales());
  for (auto& c : clocks_) c.advance_to(t);
  return t;
}

}  // namespace pgb
