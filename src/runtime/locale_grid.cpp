#include "runtime/locale_grid.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pgb {

LocaleCtx::LocaleCtx(LocaleGrid& grid, int locale)
    : grid_(grid), locale_(locale) {
  PGB_REQUIRE(locale >= 0 && locale < grid.num_locales(),
              "locale id out of range");
}

SimClock& LocaleCtx::clock() { return grid_.clock(host()); }

int LocaleCtx::host() const {
  const std::uint64_t e = grid_.membership().epoch();
  if (host_epoch_ != e) {
    host_ = grid_.host_of(locale_);
    host_epoch_ = e;
  }
  return host_;
}

void LocaleCtx::parallel_region(CostVector cost) {
  cost.add(CostKind::kTaskSpawn, grid_.threads());
  grid_.hot().parallel_regions->inc();
  clock().advance(charge_scale_ *
                  region_time(grid_.model().node, cost, grid_.threads(),
                              grid_.colocated()));
}

void LocaleCtx::serial_region(const CostVector& cost) {
  clock().advance(charge_scale_ *
                  region_time(grid_.model().node, cost, 1, grid_.colocated()));
}

void LocaleCtx::comm_event(const char* path, int peer, std::int64_t msgs,
                           std::int64_t bytes, std::int64_t bulks) {
  const auto& hot = grid_.hot();
  hot.messages->inc(msgs);
  hot.bytes->inc(bytes);
  hot.bulks->inc(bulks);
  // Matrix attribution mirrors the counters above exactly (same msgs and
  // bytes, once per wire attempt) and keys on *physical* hosts, so the
  // matrix totals stay conserved against comm.messages/comm.bytes.
  grid_.comm_matrix_add(path, host(), grid_.host_of(peer), msgs, bytes);
  grid_.metrics().counter("comm.messages", {{"path", path}}).inc(msgs);
  auto* session = grid_.trace_session();
  if (session != nullptr && session->detail()) {
    session->instant(locale_, std::string("comm.") + path, clock().now(),
                     {{"peer", std::to_string(peer)},
                      {"messages", std::to_string(msgs)},
                      {"bytes", std::to_string(bytes)}});
  }
}

void LocaleCtx::transfer(const char* path, int peer, std::int64_t msgs,
                         std::int64_t bytes, std::int64_t bulks,
                         double cost) {
  const auto& hot = grid_.hot();
  hot.logical_messages->inc(msgs);
  FaultPlan* plan = grid_.fault_plan();
  if (plan == nullptr) {
    comm_event(path, peer, msgs, bytes, bulks);
    clock().advance(cost);
    return;
  }
  // The fault plan reasons about *physical* locales: a stall targeted at
  // locale 3 follows whatever logical work is hosted there, and a dead
  // host stays unreachable no matter which logical ids once lived on it.
  const DeliveryOutcome out =
      plan_delivery(*plan, grid_.retry_policy(), host(), grid_.host_of(peer),
                    clock().now());
  // Every wire attempt (retries and duplicates included) is real
  // traffic: it shows up in comm.messages and the per-path family.
  const int wire = out.attempts + out.duplicates;
  for (int i = 0; i < wire; ++i) {
    comm_event(path, peer, msgs, bytes, bulks);
  }
  hot.retries->inc(out.attempts - 1);
  hot.timeouts->inc(out.timeouts);
  if (out.drops > 0) hot.injected_drop->inc(out.drops);
  if (out.duplicates > 0) hot.injected_dup->inc(out.duplicates);
  if (out.corrupts > 0) hot.injected_corrupt->inc(out.corrupts);
  if (out.stalls > 0) hot.injected_stall->inc(out.stalls);
  if (!out.delivered) {
    // A dead peer (or a total drop storm) exhausted the attempts. Data
    // movement in this process is unaffected; the failure is surfaced
    // at the next coforall dispatch, where recovery can take over.
    grid_.metrics().counter("comm.undeliverable", {{"path", path}}).inc();
  }
  // Duplicates overlap the original on the wire, so only the serialized
  // attempts, injected stalls, and retry waits charge this clock.
  clock().advance(static_cast<double>(out.attempts) * cost +
                  out.stall_time + out.wait_time);
}

void LocaleCtx::remote_chain(int peer, std::int64_t count,
                             double rts_per_elem, std::int64_t bytes_each,
                             double contention) {
  // Locality is decided by *hosts*: after a degraded-mode remap, two
  // logical locales sharing a survivor exchange data through its memory,
  // not the wire. Identity membership makes this the plain self check.
  const int self_h = host();
  const int peer_h = grid_.host_of(peer);
  if (peer_h == self_h) return;  // local access: caller charges node costs
  // Each element sends one payload message after rts_per_elem dependent
  // round trips (2 one-way messages each).
  transfer("chain", peer,
           count + std::llround(static_cast<double>(count) * 2.0 *
                                rts_per_elem),
           count * bytes_each, 0,
           contention *
               grid_.net().dependent_chain(
                   count, rts_per_elem, bytes_each,
                   grid_.same_node(self_h, peer_h), grid_.colocated()));
}

void LocaleCtx::remote_msgs(int peer, std::int64_t count,
                            std::int64_t bytes_each, double contention) {
  const int self_h = host();
  const int peer_h = grid_.host_of(peer);
  if (peer_h == self_h) return;
  transfer("msgs", peer, count, count * bytes_each, 0,
           contention *
               grid_.net().overlapped_messages(
                   count, bytes_each, grid_.same_node(self_h, peer_h),
                   grid_.colocated()));
}

void LocaleCtx::remote_bulk(int peer, std::int64_t bytes) {
  const int self_h = host();
  const int peer_h = grid_.host_of(peer);
  if (peer_h == self_h) return;
  transfer("bulk", peer, 1, bytes, 1,
           grid_.net().bulk(bytes, grid_.same_node(self_h, peer_h),
                            grid_.colocated()));
}

void LocaleCtx::remote_rt(int peer, std::int64_t bytes_back) {
  const int self_h = host();
  const int peer_h = grid_.host_of(peer);
  if (peer_h == self_h) return;
  transfer("rt", peer, 2, bytes_back, 0,
           grid_.net().round_trip(bytes_back, grid_.same_node(self_h, peer_h),
                                  grid_.colocated()));
}

LocaleGrid::LocaleGrid(GridConfig cfg) : cfg_(cfg), net_(cfg.model.net) {
  PGB_REQUIRE(cfg.rows >= 1 && cfg.cols >= 1, "grid must be at least 1x1");
  PGB_REQUIRE(cfg.threads_per_locale >= 1, "need at least one thread");
  PGB_REQUIRE(cfg.locales_per_node >= 1, "need at least one locale per node");
  const int n = cfg.rows * cfg.cols;
  locales_.reserve(n);
  for (int id = 0; id < n; ++id) {
    locales_.push_back(Locale{.id = id,
                              .row = id / cfg.cols,
                              .col = id % cfg.cols,
                              .node = id / cfg.locales_per_node});
  }
  clocks_.resize(n);
  membership_ = Membership(n);
  straggler_hits_.assign(n, 0);
  hot_.messages = &metrics_.counter("comm.messages");
  hot_.bytes = &metrics_.counter("comm.bytes");
  hot_.bulks = &metrics_.counter("comm.bulks");
  hot_.agg_flushes = &metrics_.counter("agg.flushes");
  hot_.parallel_regions = &metrics_.counter("runtime.parallel_regions");
  hot_.coforalls = &metrics_.counter("runtime.coforalls");
  hot_.barriers = &metrics_.counter("runtime.barriers");
  hot_.logical_messages = &metrics_.counter("comm.logical_messages");
  hot_.retries = &metrics_.counter("comm.retries");
  hot_.timeouts = &metrics_.counter("comm.timeouts");
  hot_.injected_drop = &metrics_.counter("fault.injected", {{"kind", "drop"}});
  hot_.injected_dup = &metrics_.counter("fault.injected", {{"kind", "dup"}});
  hot_.injected_corrupt =
      &metrics_.counter("fault.injected", {{"kind", "corrupt"}});
  hot_.injected_stall =
      &metrics_.counter("fault.injected", {{"kind", "stall"}});
}

void LocaleGrid::set_threads(int threads) {
  PGB_REQUIRE(threads >= 1, "need at least one thread");
  const int cap = max_threads();
  if (threads > cap) {
    if (!warned_thread_clamp_) {
      std::fprintf(
          stderr,
          "pgb: warning: %d threads per locale exceeds %dx the %d modeled "
          "cores available to each locale; clamping to %d\n",
          threads, kOversubscribeCap,
          std::max(1, cfg_.model.node.cores / cfg_.locales_per_node), cap);
      warned_thread_clamp_ = true;
    }
    threads = cap;
  }
  cfg_.threads_per_locale = threads;
}

LocaleGrid LocaleGrid::single(int threads, MachineModel model) {
  return LocaleGrid(GridConfig{.rows = 1,
                               .cols = 1,
                               .threads_per_locale = threads,
                               .locales_per_node = 1,
                               .model = model});
}

LocaleGrid LocaleGrid::square(int nlocales, int threads_per_locale,
                              int locales_per_node, MachineModel model) {
  PGB_REQUIRE(nlocales >= 1, "need at least one locale");
  int rows = static_cast<int>(std::sqrt(static_cast<double>(nlocales)));
  while (rows > 1 && nlocales % rows != 0) --rows;
  const int cols = nlocales / rows;
  return LocaleGrid(GridConfig{.rows = rows,
                               .cols = cols,
                               .threads_per_locale = threads_per_locale,
                               .locales_per_node = locales_per_node,
                               .model = model});
}

void LocaleGrid::remap_locale(int logical, int physical) {
  PGB_REQUIRE(logical >= 0 && logical < num_locales(),
              "remap: logical locale out of range");
  PGB_REQUIRE(physical >= 0 && physical < num_locales(),
              "remap: physical locale out of range");
  membership_.remap(logical, physical);
  metrics_.counter("membership.remaps").inc();
  if (trace_session_ != nullptr) {
    trace_session_->instant(physical, "membership.remap",
                            clocks_[physical].now(),
                            {{"logical", std::to_string(logical)}});
  }
}

double LocaleGrid::time() const {
  double t = 0.0;
  for (const auto& c : clocks_) t = std::max(t, c.now());
  return t;
}

// -- comm matrix ----------------------------------------------------------

namespace {

/// Path name -> index in comm_path_name order. First characters are
/// unique across the funnel's path literals, so the hot-path dispatch is
/// one character compare.
int comm_path_index(const char* path) {
  switch (path[0]) {
    case 'a':
      return 0;  // agg
    case 'b':
      return 1;  // bulk
    case 'c':
      return 2;  // chain
    case 'm':
      return 3;  // msgs
    case 'r':
      return 4;  // rt
    default:
      return -1;
  }
}

void append_matrix_rows(std::string& out, const std::vector<std::int64_t>& m,
                        int n, int path, int npaths, bool sum_paths) {
  out += "[";
  for (int s = 0; s < n; ++s) {
    out += s == 0 ? "[" : ",[";
    for (int d = 0; d < n; ++d) {
      std::int64_t v = 0;
      const std::size_t cell =
          static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(d);
      if (sum_paths) {
        for (int p = 0; p < npaths; ++p) {
          v += m[static_cast<std::size_t>(p) * static_cast<std::size_t>(n) *
                     static_cast<std::size_t>(n) +
                 cell];
        }
      } else {
        v = m[static_cast<std::size_t>(path) * static_cast<std::size_t>(n) *
                  static_cast<std::size_t>(n) +
              cell];
      }
      if (d > 0) out += ",";
      out += std::to_string(v);
    }
    out += "]";
  }
  out += "]";
}

}  // namespace

void LocaleGrid::enable_comm_matrix() {
  if (comm_matrix_on_) return;
  const std::size_t cells = static_cast<std::size_t>(kCommPaths) *
                            static_cast<std::size_t>(num_locales()) *
                            static_cast<std::size_t>(num_locales());
  cm_msgs_.assign(cells, 0);
  cm_bytes_.assign(cells, 0);
  comm_matrix_on_ = true;
}

void LocaleGrid::comm_matrix_add_slow(const char* path, int src, int dst,
                                      std::int64_t msgs, std::int64_t bytes) {
  const int p = comm_path_index(path);
  PGB_ASSERT(p >= 0, "comm matrix: unknown comm path");
  PGB_ASSERT(src >= 0 && src < num_locales() && dst >= 0 &&
                 dst < num_locales(),
             "comm matrix: host out of range");
  const std::size_t cell =
      (static_cast<std::size_t>(p) * static_cast<std::size_t>(num_locales()) +
       static_cast<std::size_t>(src)) *
          static_cast<std::size_t>(num_locales()) +
      static_cast<std::size_t>(dst);
  cm_msgs_[cell] += msgs;
  cm_bytes_[cell] += bytes;
}

std::int64_t LocaleGrid::comm_matrix_messages(int src, int dst) const {
  if (!comm_matrix_on_) return 0;
  const int n = num_locales();
  std::int64_t v = 0;
  for (int p = 0; p < kCommPaths; ++p) {
    v += cm_msgs_[(static_cast<std::size_t>(p) * static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(src)) *
                      static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(dst)];
  }
  return v;
}

std::int64_t LocaleGrid::comm_matrix_bytes(int src, int dst) const {
  if (!comm_matrix_on_) return 0;
  const int n = num_locales();
  std::int64_t v = 0;
  for (int p = 0; p < kCommPaths; ++p) {
    v += cm_bytes_[(static_cast<std::size_t>(p) * static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(src)) *
                       static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(dst)];
  }
  return v;
}

std::int64_t LocaleGrid::comm_matrix_total_messages() const {
  std::int64_t v = 0;
  for (std::int64_t c : cm_msgs_) v += c;
  return v;
}

std::int64_t LocaleGrid::comm_matrix_total_bytes() const {
  std::int64_t v = 0;
  for (std::int64_t c : cm_bytes_) v += c;
  return v;
}

std::string LocaleGrid::comm_matrix_json() const {
  PGB_REQUIRE(comm_matrix_on_, "comm matrix: not enabled");
  const int n = num_locales();
  std::string out = "{\"schema\":\"pgb.comm_matrix.v1\",\"locales\":";
  out += std::to_string(n);
  out += ",\"total_messages\":" + std::to_string(comm_matrix_total_messages());
  out += ",\"total_bytes\":" + std::to_string(comm_matrix_total_bytes());
  out += ",\"messages\":";
  append_matrix_rows(out, cm_msgs_, n, 0, kCommPaths, /*sum_paths=*/true);
  out += ",\"bytes\":";
  append_matrix_rows(out, cm_bytes_, n, 0, kCommPaths, /*sum_paths=*/true);
  out += ",\"by_path\":{";
  bool first = true;
  for (int p = 0; p < kCommPaths; ++p) {
    std::int64_t activity = 0;
    const std::size_t base = static_cast<std::size_t>(p) *
                             static_cast<std::size_t>(n) *
                             static_cast<std::size_t>(n);
    for (std::size_t c = 0; c < static_cast<std::size_t>(n) *
                                    static_cast<std::size_t>(n);
         ++c) {
      activity += cm_msgs_[base + c] + cm_bytes_[base + c];
    }
    if (activity == 0) continue;  // quiet paths stay out of the export
    if (!first) out += ",";
    first = false;
    out += std::string("\"") + comm_path_name(p) + "\":{\"messages\":";
    append_matrix_rows(out, cm_msgs_, n, p, kCommPaths, /*sum_paths=*/false);
    out += ",\"bytes\":";
    append_matrix_rows(out, cm_bytes_, n, p, kCommPaths, /*sum_paths=*/false);
    out += "}";
  }
  out += "}}\n";
  return out;
}

std::string LocaleGrid::comm_matrix_csv() const {
  PGB_REQUIRE(comm_matrix_on_, "comm matrix: not enabled");
  const int n = num_locales();
  std::string out = "src,dst,messages,bytes\n";
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      const std::int64_t m = comm_matrix_messages(s, d);
      const std::int64_t b = comm_matrix_bytes(s, d);
      if (m == 0 && b == 0) continue;
      out += std::to_string(s) + "," + std::to_string(d) + "," +
             std::to_string(m) + "," + std::to_string(b) + "\n";
    }
  }
  return out;
}

void LocaleGrid::publish_comm_matrix() {
  if (!comm_matrix_on_) return;
  const int n = num_locales();
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      const std::int64_t m = comm_matrix_messages(s, d);
      const std::int64_t b = comm_matrix_bytes(s, d);
      if (m == 0 && b == 0) continue;
      const obs::Labels labels = {{"dst", std::to_string(d)},
                                  {"src", std::to_string(s)}};
      auto& cm = metrics_.counter("comm.matrix.messages", labels);
      cm.inc(m - cm.value);
      auto& cb = metrics_.counter("comm.matrix.bytes", labels);
      cb.inc(b - cb.value);
    }
  }
}

void LocaleGrid::write_comm_matrix(const std::string& path) {
  PGB_REQUIRE(comm_matrix_on_, "comm matrix: not enabled");
  publish_comm_matrix();
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  const std::string text = csv ? comm_matrix_csv() : comm_matrix_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  PGB_REQUIRE(f != nullptr, "comm matrix: cannot open output file: " + path);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

void LocaleGrid::sample_counter_tracks() {
  if (trace_session_ == nullptr) return;
  const double t = time();
  auto sample = [&](const char* name, std::int64_t v) {
    trace_session_->counter(name, t, static_cast<double>(v));
  };
  sample("comm.messages", hot_.messages->value);
  sample("comm.bytes", hot_.bytes->value);
  sample("comm.retries", hot_.retries->value);
  sample("agg.flushes", hot_.agg_flushes->value);
  // Cumulative elements moved through aggregator flushes; looked up
  // without registering so runs that never aggregate don't grow an
  // empty histogram as a sampling side effect.
  if (const obs::Histogram* occ =
          metrics_.find_histogram("agg.occupancy", {{"dir", "put"}})) {
    sample("agg.occupancy.sum", occ->sum);
  }
}

void LocaleGrid::coforall_locales(const std::function<void(LocaleCtx&)>& body) {
  hot_.coforalls->inc();
  // The loop runs over *logical* locales; each body executes on the
  // clock of whichever physical host currently carries that logical id.
  // After a degraded-mode remap the buddy host runs two bodies back to
  // back, so it naturally pays double work and shows up at the barrier
  // as the slow one. Identity membership reduces every line to the
  // pre-membership behavior bit for bit.
  const int host0 = membership_.host(0);
  const double t0 = clocks_[host0].now();
  double spawn_accum = 0.0;
  for (int l = 0; l < num_locales(); ++l) {
    const int h = membership_.host(l);
    if (h != host0) {
      spawn_accum += net_.fork(same_node(host0, h), colocated());
      clocks_[h].advance_to(t0 + spawn_accum);
    }
    // Permanent-failure detection: a killed host never answers the
    // spawn. This is the one place LocaleFailed is thrown, so no
    // destructor (aggregator flushes included) can ever throw during
    // unwinding; recovery drivers catch it and either roll back to a
    // checkpoint (recovery.hpp) or rebuild the lost blocks from their
    // replicas (rebuild.hpp). The exception carries the *logical*
    // locale whose dispatch failed; drivers translate to the host.
    if (fault_plan_ != nullptr && fault_plan_->is_down(h, clocks_[h].now())) {
      metrics_.counter("fault.injected", {{"kind", "kill"}}).inc();
      if (trace_session_ != nullptr) {
        trace_session_->instant(h, "fault.locale_failed", clocks_[h].now());
      }
      throw LocaleFailed(l, clocks_[h].now());
    }
    LocaleCtx ctx(*this, l);
    body(ctx);
  }
  barrier_all();
}

double LocaleGrid::barrier_all() {
  hot_.barriers->inc();
  // Straggler watch at barrier entry: the skew between the fastest and
  // slowest *active* host (hosts still carrying logical locales — a dead
  // host's parked clock must not read as infinite skew) is the direct
  // signature of a stall-injected straggler. Only observed when someone
  // is watching (threshold set or a fault plan attached), so fault-free
  // metrics and committed profile baselines keep their exact key set.
  if (straggler_threshold_ > 0.0 || fault_plan_ != nullptr) {
    double lo = 0.0, hi = 0.0;
    int slowest = -1;
    bool first = true;
    for (int l = 0; l < num_locales(); ++l) {
      const int h = membership_.host(l);
      const double now = clocks_[h].now();
      if (first || now < lo) lo = now;
      if (first || now > hi) {
        hi = now;
        slowest = h;
      }
      first = false;
    }
    const double skew = hi - lo;
    metrics_.histogram("barrier.skew").observe(std::llround(skew * 1e9));
    if (straggler_threshold_ > 0.0 && skew > straggler_threshold_ &&
        slowest >= 0) {
      metrics_.counter("straggler.detected").inc();
      ++straggler_hits_[static_cast<std::size_t>(slowest)];
      if (trace_session_ != nullptr) {
        trace_session_->instant(slowest, "straggler.detected",
                                clocks_[slowest].now(),
                                {{"skew_ns",
                                  std::to_string(std::llround(skew * 1e9))}});
      }
    }
  }
  const double t = time() + net_.barrier(membership_.active());
  if (trace_session_ != nullptr) {
    // One "barrier" span per locale, from its arrival to the joined
    // time: the timeline's direct view of load imbalance.
    for (int l = 0; l < num_locales(); ++l) {
      trace_session_->begin_span(l, "barrier", clocks_[l].now());
    }
  }
  for (auto& c : clocks_) c.advance_to(t);
  if (trace_session_ != nullptr) {
    for (int l = 0; l < num_locales(); ++l) {
      trace_session_->end_span(l, t);
    }
  }
  return t;
}

}  // namespace pgb
