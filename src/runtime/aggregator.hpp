// Conveyor-style communication aggregation for the locale-grid runtime.
//
// The paper's distributed figures (8-9) show fine-grained element-by-
// element access dominating SpMSpV and Assign; its conclusion names a
// bulk-synchronous schedule as the remedy. Bale/conveyors and Chapel's
// SrcAggregator/DstAggregator implement that remedy as a reusable layer:
// each task keeps a small buffer per destination locale, appends elements
// locally, and ships a whole buffer as one bulk transfer when it fills
// (or on an explicit flush). This header is that layer for pgas-graphblas:
//
//   DstAggregator<T>  buffered remote puts/accumulations — push(peer, t)
//                     appends to the peer's buffer; a full buffer is
//                     delivered to the caller's sink in one flush.
//   SrcAggregator<T>  buffered remote gets — get(peer, req) queues a
//                     request; a flush ships the request batch and the
//                     response batch as two bulks.
//   AggChannel        the shared flush pipeline: charges the machine
//                     model (one remote_bulk per flush plus a small
//                     header round trip), models double-buffered overlap
//                     of transfers with ongoing buffering, and counts
//                     per-aggregator stats.
//
// The data really moves: deliver callbacks run for real, so results are
// bit-identical to the fine-grained schedule (per-peer FIFO order keeps
// even floating-point accumulation order unchanged). Only the *charging*
// differs — N fine-grained messages collapse into ceil(N/capacity) bulk
// flushes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/locale_grid.hpp"

namespace pgb {

/// Communication schedule for distributed kernels with a gather/scatter
/// structure. kFine is the paper's element-by-element code; kBulk is one
/// hand-rolled transfer per peer; kAggregated is the conveyor schedule
/// above (per-peer buffers, capacity-triggered bulk flushes). kAuto
/// defers the choice to the grid's inspector–executor (runtime/
/// inspector.hpp), which prices fine/bulk/agg — plus read-only
/// replication with epoch-cached reads — per call site per wave and
/// binds the cheapest; outputs stay byte-identical either way.
enum class CommMode {
  kFine,
  kBulk,
  kAggregated,
  kAuto,
};

const char* to_string(CommMode m);

/// Parses "fine" | "bulk" | "agg" (or "aggregated") | "auto"; throws
/// InvalidArgument (enumerating the accepted modes) otherwise.
CommMode parse_comm_mode(const std::string& s);

/// Tuning knobs of one aggregator.
struct AggConfig {
  /// Elements buffered per peer before a capacity-triggered flush.
  std::int64_t capacity = 2048;
  /// Model double buffering: a flushed buffer is handed to the transport
  /// and the task keeps filling the spare while the transfer is in
  /// flight; successive transfers queue behind one another. When off,
  /// every flush blocks until its transfer completes.
  bool double_buffer = true;
  /// Receiver-side serialization: the effective transfer cost is scaled
  /// by this factor when several locales converge on one peer (same
  /// convention as the hand-rolled bulk paths).
  double contention = 1.0;
  /// Bytes of the per-flush header (count + base address).
  std::int64_t header_bytes = 8;
  /// Modeled response payload per element of a SrcAggregator flush.
  std::int64_t resp_bytes_each = 8;
};

/// Per-aggregator counters, reported by benches as the message-count
/// reduction of aggregation. Self-peer traffic never reaches the network
/// and is counted separately.
struct AggregatorStats {
  std::int64_t pushed = 0;        ///< elements routed through the aggregator
  std::int64_t flushes = 0;       ///< buffer drains that hit the network
  std::int64_t local_flushes = 0; ///< self-peer buffer drains (no comm)
  std::int64_t messages = 0;      ///< modeled one-way network messages
  std::int64_t bytes = 0;         ///< payload + request bytes moved
  std::int64_t resends = 0;       ///< flush re-sends forced by the fault plan
};

/// The flush pipeline shared by both aggregator directions. Usable on its
/// own for "chunked bulk" patterns where the remote range is known and no
/// per-element request payload is needed (e.g. the SpMSpV gather of whole
/// input-vector pieces).
///
/// Delivery guarantees: every flush carries a per-channel sequence
/// number and its header round trip doubles as the ack. When the grid
/// has a fault plan attached, a dropped or corrupted flush is re-sent
/// (with the same sequence number) per the grid's RetryPolicy — resends
/// re-pay the transfer through the network model and occupy the
/// double-buffered injection channel — and a duplicated flush is
/// deduplicated by sequence number at the receiver, so the caller's
/// deliver callback always runs exactly once per flush, in per-peer
/// FIFO order. That keeps the byte-identity invariant of the
/// aggregated schedule even under chaos.
class AggChannel {
 public:
  AggChannel(LocaleCtx& ctx, AggConfig cfg);

  const AggConfig& config() const { return cfg_; }
  const AggregatorStats& stats() const { return stats_; }
  LocaleCtx& ctx() { return ctx_; }

  void count_push() { ++stats_.pushed; }

  /// One buffered-put flush: header round trip + one bulk of `bytes` to
  /// `peer`. No-op (beyond stats) for the self peer. `elems` (when >= 0)
  /// is the batch's element count, observed into the occupancy
  /// histogram (`agg.occupancy{dir=put}`).
  void flush_put(int peer, std::int64_t bytes, std::int64_t elems = -1);

  /// One buffered-get flush: header round trip + request bulk out +
  /// response bulk back.
  void flush_get(int peer, std::int64_t req_bytes, std::int64_t resp_bytes,
                 std::int64_t elems = -1);

  /// Chunked read of `count` remote elements whose location is already
  /// known to the target (no request payload): capacity-sized flush_gets.
  void get_elems(int peer, std::int64_t count, std::int64_t bytes_each);

  /// Joins the in-flight transfer (double buffering). Call after the last
  /// flush; flush_all() of the aggregators does this for you.
  void drain();

 private:
  void issue(int peer, double cost, std::int64_t msgs, std::int64_t bytes,
             bool is_get, std::int64_t elems);

  LocaleCtx& ctx_;
  AggConfig cfg_;
  AggregatorStats stats_;
  double inflight_end_ = 0.0;  ///< sim time the queued transfers complete
  /// Epoch guard: a channel constructed before a grid.reset() must not
  /// charge clocks or stats into the new epoch when a destructor flush
  /// drains it afterwards (the data is still delivered — only the
  /// modeled charging goes quiet).
  std::uint64_t epoch_ = 0;
  std::int64_t next_seq_ = 0;  ///< per-channel flush sequence number
  obs::Counter* m_messages_ = nullptr;  ///< agg.messages
  obs::Counter* m_bytes_ = nullptr;     ///< agg.bytes
  obs::Counter* m_path_messages_ = nullptr;  ///< comm.messages{path=agg}
  obs::Counter* m_resends_ = nullptr;        ///< agg.resends
  obs::Histogram* m_occ_put_ = nullptr;
  obs::Histogram* m_occ_get_ = nullptr;
};

/// Buffered remote puts/accumulations. `deliver(peer, batch)` performs
/// the real write on the destination's data; it runs once per flush, in
/// per-peer FIFO order.
template <typename T>
class DstAggregator {
 public:
  using DeliverFn = std::function<void(int peer, std::vector<T>& batch)>;

  DstAggregator(LocaleCtx& ctx, DeliverFn deliver, AggConfig cfg = {})
      : chan_(ctx, cfg),
        deliver_(std::move(deliver)),
        buf_(static_cast<std::size_t>(ctx.grid().num_locales())) {}

  DstAggregator(const DstAggregator&) = delete;
  DstAggregator& operator=(const DstAggregator&) = delete;

  ~DstAggregator() { flush_all(); }

  void push(int peer, T item) {
    chan_.count_push();
    auto& b = buf_[static_cast<std::size_t>(peer)];
    b.push_back(std::move(item));
    if (static_cast<std::int64_t>(b.size()) >= chan_.config().capacity) {
      flush(peer);
    }
  }

  /// Ships `peer`'s buffer now, regardless of fill level.
  void flush(int peer) {
    auto& b = buf_[static_cast<std::size_t>(peer)];
    if (b.empty()) return;
    chan_.flush_put(peer, static_cast<std::int64_t>(b.size() * sizeof(T)),
                    static_cast<std::int64_t>(b.size()));
    deliver_(peer, b);
    b.clear();
  }

  /// Ships every non-empty buffer and joins the in-flight transfer.
  void flush_all() {
    for (int p = 0; p < static_cast<int>(buf_.size()); ++p) flush(p);
    chan_.drain();
  }

  const AggregatorStats& stats() const { return chan_.stats(); }

 private:
  AggChannel chan_;
  DeliverFn deliver_;
  std::vector<std::vector<T>> buf_;
};

/// Buffered remote gets. `T` is the request record (e.g. {output slot,
/// remote index}); `deliver(peer, batch)` resolves a request batch
/// against the peer's data and stores the results — the response payload
/// is modeled as `AggConfig::resp_bytes_each` per request.
template <typename T>
class SrcAggregator {
 public:
  using DeliverFn = std::function<void(int peer, std::vector<T>& batch)>;

  SrcAggregator(LocaleCtx& ctx, DeliverFn deliver, AggConfig cfg = {})
      : chan_(ctx, cfg),
        deliver_(std::move(deliver)),
        buf_(static_cast<std::size_t>(ctx.grid().num_locales())) {}

  SrcAggregator(const SrcAggregator&) = delete;
  SrcAggregator& operator=(const SrcAggregator&) = delete;

  ~SrcAggregator() { flush_all(); }

  void get(int peer, T request) {
    chan_.count_push();
    auto& b = buf_[static_cast<std::size_t>(peer)];
    b.push_back(std::move(request));
    if (static_cast<std::int64_t>(b.size()) >= chan_.config().capacity) {
      flush(peer);
    }
  }

  void flush(int peer) {
    auto& b = buf_[static_cast<std::size_t>(peer)];
    if (b.empty()) return;
    const auto n = static_cast<std::int64_t>(b.size());
    chan_.flush_get(peer, n * static_cast<std::int64_t>(sizeof(T)),
                    n * chan_.config().resp_bytes_each, n);
    deliver_(peer, b);
    b.clear();
  }

  void flush_all() {
    for (int p = 0; p < static_cast<int>(buf_.size()); ++p) flush(p);
    chan_.drain();
  }

  const AggregatorStats& stats() const { return chan_.stats(); }

 private:
  AggChannel chan_;
  DeliverFn deliver_;
  std::vector<std::vector<T>> buf_;
};

}  // namespace pgb
