#include "runtime/inspector.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pgb {

const char* to_string(SiteStrategy s) {
  switch (s) {
    case SiteStrategy::kFine:
      return "fine";
    case SiteStrategy::kBulk:
      return "bulk";
    case SiteStrategy::kAggregated:
      return "agg";
    case SiteStrategy::kReplicate:
      return "replicate";
  }
  return "?";
}

int replication_tree_depth(double fanout) {
  const auto f = static_cast<std::int64_t>(std::llround(std::max(fanout, 1.0)));
  int depth = 0;
  std::int64_t reached = 1;
  while (reached < f) {
    reached *= 2;
    ++depth;
  }
  return std::max(depth, 1);
}

std::uint64_t SiteFootprint::signature() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(pairs));
  mix(static_cast<std::uint64_t>(elements));
  mix(static_cast<std::uint64_t>(max_initiator_elements));
  mix(static_cast<std::uint64_t>(max_initiator_pairs));
  mix(static_cast<std::uint64_t>(bytes_each));
  mix(static_cast<std::uint64_t>(block_bytes));
  mix(static_cast<std::uint64_t>(std::llround(fanout * 16.0)));
  mix(static_cast<std::uint64_t>(std::llround(chain_rts * 16.0)));
  mix(static_cast<std::uint64_t>(std::llround(bulk_pair_overhead * 1e9)));
  mix((read_only ? 2u : 0u) | (gather ? 1u : 0u));
  return h;
}

namespace {

/// Power of two nearest to ~elements-per-peer/4, clamped to [512, 8192]:
/// about four capacity-triggered flushes per peer, enough for the
/// double-buffered channel to overlap transfers with ongoing buffering
/// without paying a header round trip per handful of elements.
std::int64_t tune_agg_capacity(std::int64_t per_peer_elems) {
  const std::int64_t target =
      std::clamp<std::int64_t>((per_peer_elems + 3) / 4, 512, 8192);
  std::int64_t cap = 512;
  while (cap * 2 <= target) cap *= 2;
  // Round to the nearer of cap and 2*cap.
  if (target - cap > 2 * cap - target) cap *= 2;
  return std::min<std::int64_t>(cap, 8192);
}

}  // namespace

void Inspector::sync_epoch() {
  PGB_REQUIRE(membership_ != nullptr, "inspector used before bind()");
  const std::uint64_t e = membership_->epoch();
  if (epoch_synced_ && e == cache_epoch_) return;
  if (epoch_synced_ && !cache_.empty()) {
    mx_->counter("inspector.cache.invalidations")
        .inc(static_cast<std::int64_t>(cache_.size()));
    cache_.clear();
  }
  cache_epoch_ = e;
  epoch_synced_ = true;
}

SiteDecision Inspector::decide(const std::string& site,
                               const SiteFootprint& fp) {
  PGB_REQUIRE(net_ != nullptr && mx_ != nullptr,
              "inspector used before bind()");
  sync_epoch();

  auto [it, inserted] = sites_.try_emplace(site);
  SiteState& st = it->second;
  if (inserted) mx_->counter("inspector.sites").inc();

  const std::uint64_t sig = fp.signature();
  if (st.calls > 0 && sig == st.last_signature) {
    ++st.repeat_streak;
  } else {
    st.repeat_streak = 0;
  }
  st.last_signature = sig;
  ++st.calls;
  st.last_footprint = fp;

  // Price every candidate through the same NetworkModel formulas the
  // kernels charge with, on the wave's critical path (the heaviest
  // initiator): P remote pairs of ~per elements each, contended by
  // `fanout` simultaneous requesters per target. All inter-node
  // (intra_node=false) — the conservative case the hand-rolled
  // schedules also assume when they price contention.
  const NetworkModel& net = *net_;
  const std::int64_t P = std::max<std::int64_t>(fp.max_initiator_pairs, 1);
  const std::int64_t E = std::max<std::int64_t>(fp.max_initiator_elements, 0);
  const std::int64_t per = (E + P - 1) / P;
  const std::int64_t b = std::max<std::int64_t>(fp.bytes_each, 1);
  const double C = std::max(fp.fanout, 1.0);
  const double Pd = static_cast<double>(P);
  const int colo = colocated_;

  const double fine =
      fp.chain_rts > 0.0
          ? Pd * C * net.dependent_chain(per, fp.chain_rts, b, false, colo)
          : Pd * C * net.overlapped_messages(per, b, false, colo);

  // The hand-rolled bulk paths fold the contention into the byte count:
  // one serialized transfer of C * bytes per pair. (The size round trip
  // gather sites pay up front is strategy-independent and cancels out of
  // the argmin, so no candidate prices it.) Sites whose bulk path spawns
  // a packing region per destination add that node-side floor per pair —
  // at small batch sizes it, not the wire, is what sinks kBulk.
  const double bulk = Pd * (net.bulk(std::llround(C * static_cast<double>(
                                         per * b)),
                                     false, colo) +
                            fp.bulk_pair_overhead);

  const std::int64_t cap = tune_agg_capacity(per);
  const std::int64_t flushes_per_peer =
      std::max<std::int64_t>((per + cap - 1) / cap, per > 0 ? 1 : 0);
  const double agg =
      Pd * static_cast<double>(flushes_per_peer) *
      (net.round_trip(8, false, colo) +
       C * net.bulk(std::min(cap, std::max<std::int64_t>(per, 1)) * b, false,
                    colo));

  // Replication: ship each block once per reader host through a binomial
  // broadcast tree (depth log2(fanout) instead of fanout serialized
  // serves), then every later read is local. The ship cost is weighted
  // by the predicted miss fraction. Before any cache probes, the only
  // reuse signal is the footprint repeat streak (an identical wave will
  // hit); once the executor has probed the cache, the observed hit rate
  // takes over — so a source whose *content* churns every wave (same
  // sizes, new fingerprint: think PageRank's iterate) drives the miss
  // fraction back to 1 and the site falls back to bulk/agg on its own.
  // The 0.1 floor keeps a long hit streak from pricing replication as
  // free forever.
  double replicate = -1.0;
  if (fp.read_only && fp.gather) {
    const std::int64_t blk =
        fp.block_bytes > 0 ? fp.block_bytes : E * b;
    const std::int64_t blk_per = std::max<std::int64_t>((blk + P - 1) / P, 0);
    const int depth = replication_tree_depth(C);
    const double ship =
        Pd * (net.round_trip(8, false, colo) +
              static_cast<double>(depth) * net.bulk(blk_per, false, colo));
    double miss_frac;
    if (st.cache_lookups > 0) {
      miss_frac = std::max(
          0.1, 1.0 - static_cast<double>(st.cache_hits) /
                         static_cast<double>(st.cache_lookups));
    } else {
      miss_frac = 1.0 / static_cast<double>(
                            1 + std::min<std::int64_t>(st.repeat_streak, 7));
    }
    replicate = ship * miss_frac;
  }

  const double preds[4] = {fine, bulk, agg, replicate};
  SiteDecision d;
  d.strategy = SiteStrategy::kFine;
  d.predicted = fine;
  for (int s = 1; s < 4; ++s) {
    if (preds[s] >= 0.0 && preds[s] < d.predicted) {
      d.strategy = static_cast<SiteStrategy>(s);
      d.predicted = preds[s];
    }
  }
  d.agg_capacity = cap;

  ++st.decisions[static_cast<int>(d.strategy)];
  st.last_strategy = d.strategy;
  st.last_predicted = d.predicted;

  mx_->counter("inspector.decisions", {{"strategy", to_string(d.strategy)}})
      .inc();
  mx_->counter("inspector.site.decisions",
               {{"site", site}, {"strategy", to_string(d.strategy)}})
      .inc();
  return d;
}

bool Inspector::cache_lookup(const std::string& site, int src, int reader_host,
                             std::uint64_t tag) {
  PGB_REQUIRE(mx_ != nullptr, "inspector used before bind()");
  sync_epoch();
  SiteState& st = sites_[site];  // decide() registered it; tests may not
  const auto key = std::make_tuple(site, src, reader_host);
  auto it = cache_.find(key);
  // A probe with no entry is a compulsory miss — the cache hasn't had a
  // chance yet. It must not depress the observed hit rate, or the first
  // replicate wave's cold misses would read as "reuse is zero" and flip
  // the site straight back to bulk before the cache ever warms. Only
  // probes that found an entry are evidence about reuse: same tag is a
  // hit, a changed tag is churn.
  if (it == cache_.end()) return false;
  ++st.cache_lookups;
  if (it->second.tag != tag) {
    // Content changed: stale replica, re-ship. This is an eviction, not
    // an epoch invalidation.
    cache_.erase(it);
    return false;
  }
  ++st.cache_hits;
  mx_->counter("inspector.cache.hits").inc();
  return true;
}

void Inspector::cache_install(const std::string& site, int src,
                              int reader_host, std::uint64_t tag,
                              std::int64_t bytes) {
  PGB_REQUIRE(mx_ != nullptr, "inspector used before bind()");
  sync_epoch();
  cache_[std::make_tuple(site, src, reader_host)] = Replica{tag, bytes};
  mx_->counter("inspector.cache.installs").inc();
  mx_->counter("inspector.replicated_bytes").inc(bytes);
}

void Inspector::observe(const std::string& site, double observed_seconds) {
  PGB_REQUIRE(mx_ != nullptr, "inspector used before bind()");
  auto it = sites_.find(site);
  if (it == sites_.end()) return;  // no decision to grade
  SiteState& st = it->second;
  // Per-wave grading against the decision that scheduled this wave. The
  // prediction is the *remote* critical path only, while the charged time
  // includes node-side work and barriers, so the raw observed/predicted
  // ratio carries a large constant factor that says nothing about the
  // ranking. What does signal a wrong price is that factor *moving*:
  // grade this wave's ratio against the site's running ratio from the
  // waves before it. Drifting outside 2x either way means the model
  // ranked this wave from a price that no longer tracks what its waves
  // actually cost — the trigger for closed-loop recalibration. The first
  // wave seeds the baseline and is never flagged.
  if (st.last_predicted > 0.0 && observed_seconds > 0.0 &&
      st.observed_waves > 0 && st.predicted_total > 0.0 &&
      st.observed_total > 0.0) {
    const double ratio = observed_seconds / st.last_predicted;
    const double baseline = st.observed_total / st.predicted_total;
    const double drift = ratio / baseline;
    if (drift > 2.0 || drift < 0.5) {
      ++st.mispriced_waves;
      mx_->counter("inspector.mispriced").inc();
    }
  }
  st.observed_total += observed_seconds;
  st.predicted_total += st.last_predicted;
  ++st.observed_waves;
}

std::vector<SiteReport> Inspector::report() const {
  std::vector<SiteReport> out;
  out.reserve(sites_.size());
  for (const auto& [name, st] : sites_) {
    SiteReport r;
    r.site = name;
    r.calls = st.calls;
    r.last_strategy = st.last_strategy;
    for (int s = 0; s < 4; ++s) r.decisions[s] = st.decisions[s];
    r.last_predicted = st.last_predicted;
    r.last_footprint = st.last_footprint;
    r.observed_total = st.observed_total;
    r.predicted_total = st.predicted_total;
    r.observed_waves = st.observed_waves;
    r.mispriced_waves = st.mispriced_waves;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace pgb
