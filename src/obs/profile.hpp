// Profile reports: fold a TraceSession + MetricsSnapshot into a
// comparable artifact, and diff two such artifacts as a perf gate.
//
// A Profile is the analysis-side view of one traced run: the recorded
// spans, merged by name into a tree (a "spmspv.spa" node under the
// "spmspv.local" phase node), with per-node inclusive/self *simulated*
// time, instance counts, per-locale inclusive min/mean/max (the load-
// imbalance view), and the summed integer span args (the `d_messages` /
// `d_bytes` comm deltas the grid spans attach). Alongside the tree it
// carries the registry's counters and histogram summaries verbatim.
// Host wall time is deliberately absent: everything in a profile is
// modeled or counted, so the same seed produces a byte-identical
// profile.json on every run — which is what makes diffing meaningful.
//
// The serialized form (`Profile::json()`) is stable: sorted keys,
// fixed "%.9g" float formatting, version-tagged. `Profile::load()`
// reads it back (via util/json), and `diff_profiles()` compares two
// profiles under per-metric tolerances:
//   - structure (span set, counter families, workload identity, counts,
//     message/byte counters, histogram shapes): exact — these are
//     deterministic, any drift is a behavioral change;
//   - modeled times (inclusive/self, per-locale stats, total): a
//     relative band (default 5%), with a floor below which times are
//     noise and not gated. Faster-than-band shows up as an improvement
//     (reported, but not a failure — regenerate the baseline to lock
//     it in).
// `tools/pgb_diff` wraps this as the CI gate; `pgb --profile=FILE` and
// the figure benches' `--profile` flag emit the artifacts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pgb::obs {

/// One merged span-name node of the profile tree. Times are seconds of
/// simulated time, summed over every instance on every locale.
struct ProfileNode {
  std::int64_t count = 0;  ///< span instances across all locales
  double incl = 0.0;       ///< total inclusive time
  double self = 0.0;       ///< incl minus direct children's inclusive
  int locales = 0;         ///< locales with at least one instance
  double incl_min = 0.0;   ///< min over per-locale inclusive totals
  double incl_mean = 0.0;  ///< mean over locales that have the node
  double incl_max = 0.0;   ///< max over per-locale inclusive totals
  /// Integer span args summed over instances (e.g. d_messages, d_bytes,
  /// frontier); exact and deterministic, diffed exactly.
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, ProfileNode> children;  ///< keyed by span name
};

/// Exact summary of one registry histogram (all integers).
struct ProfileHistogram {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t p50 = 0;
  std::int64_t p95 = 0;
  std::int64_t max = 0;
};

struct Profile {
  static constexpr int kVersion = 1;

  // Workload identity: diffing profiles of different workloads is a
  // category error, so these participate in the structural comparison.
  std::string workload;  ///< free-form "op + generator + sizes" label
  std::string comm;      ///< fine | bulk | agg (empty when n/a)
  std::uint64_t seed = 0;
  int locales = 0;
  int threads = 0;
  std::string machine;

  double total_time = 0.0;  ///< grid simulated time at capture
  std::map<std::string, ProfileNode> spans;  ///< root span names
  std::map<std::string, std::int64_t> counters;  ///< registry counters
  std::map<std::string, ProfileHistogram> histograms;

  /// Stable serialization (sorted keys, fixed float format): the same
  /// profile always renders to the same bytes, and render-parse-render
  /// is idempotent.
  std::string json() const;
  void write(const std::string& path) const;

  static Profile from_json(const std::string& text);
  static Profile load(const std::string& path);
};

/// Folds the session's recorded spans and the snapshot's counters /
/// histograms into a profile. Only closed spans contribute (the caller
/// captures after the op, when every scope has exited); the workload
/// identity fields are the caller's to fill in.
Profile build_profile(const TraceSession& session,
                      const MetricsSnapshot& snap);

// ---------------------------------------------------------------------
// Diff / gate
// ---------------------------------------------------------------------

struct ProfileDiffOptions {
  double time_tol = 0.05;    ///< relative band for modeled times
  double time_floor = 1e-6;  ///< seconds; both sides below = not gated
};

struct ProfileFinding {
  enum class Kind {
    kStructural,   ///< span/counter appeared or vanished, identity drift
    kRegression,   ///< exact mismatch, or time above the band
    kImprovement,  ///< time below the band (informational)
  };
  Kind kind = Kind::kRegression;
  std::string where;   ///< e.g. "spans/spmspv.local/spmspv.gather"
  std::string metric;  ///< e.g. "incl_mean", "count", "d_messages"
  double base = 0.0;
  double cand = 0.0;

  /// "spans/x incl_mean: 1.2e-3 -> 1.4e-3 (+16.7%)"-style line.
  std::string to_string() const;
};

struct ProfileDiffResult {
  std::vector<ProfileFinding> findings;  ///< structural+regression first
  int compared = 0;  ///< individual metrics compared

  bool clean() const;  ///< no structural findings, no regressions
  std::string report(const std::string& base_name,
                     const std::string& cand_name) const;
};

ProfileDiffResult diff_profiles(const Profile& base, const Profile& cand,
                                const ProfileDiffOptions& opt = {});

/// Multiplies every time field of nodes named `name` (at any depth) by
/// `factor`. This is the gate's self-test hook: CI perturbs a copy of
/// the baseline by 10% and asserts `pgb_diff` fails — proving the gate
/// would catch a real cost-model shift of that size.
void scale_span_times(Profile& p, const std::string& name, double factor);

}  // namespace pgb::obs
