#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pgb::obs {

void TraceSession::ensure_track(int track) {
  PGB_REQUIRE(track >= 0, "trace: negative track id");
  if (track >= num_tracks_) num_tracks_ = track + 1;
  if (static_cast<int>(open_.size()) <= track) {
    open_.resize(static_cast<std::size_t>(track) + 1);
  }
}

void TraceSession::begin_span(int track, std::string name, double sim_now,
                              TraceArgs args) {
  ensure_track(track);
  open_[static_cast<std::size_t>(track)].push_back(
      OpenSpan{std::move(name), sim_now, wall_now_us(), std::move(args)});
}

void TraceSession::end_span(int track, double sim_now,
                            const TraceArgs& extra) {
  ensure_track(track);
  auto& stack = open_[static_cast<std::size_t>(track)];
  if (stack.empty()) return;  // cleared mid-span by a grid reset
  OpenSpan o = std::move(stack.back());
  stack.pop_back();
  SpanEvent e;
  e.name = std::move(o.name);
  e.track = track;
  e.depth = static_cast<int>(stack.size());
  e.sim_begin = o.sim_begin;
  e.sim_end = std::max(sim_now, o.sim_begin);  // clocks are monotonic
  e.wall_begin_us = o.wall_begin;
  e.wall_end_us = wall_now_us();
  e.args = std::move(o.args);
  e.args.insert(e.args.end(), extra.begin(), extra.end());
  spans_.push_back(std::move(e));
}

void TraceSession::instant(int track, std::string name, double sim_now,
                           TraceArgs args) {
  ensure_track(track);
  instants_.push_back(InstantEvent{std::move(name), track, sim_now,
                                   wall_now_us(), std::move(args)});
}

void TraceSession::counter(std::string name, double sim_now, double value) {
  counters_.push_back(CounterSample{std::move(name), sim_now, value});
}

void TraceSession::clear() {
  for (auto& s : open_) s.clear();
  spans_.clear();
  instants_.clear();
  counters_.clear();
  track_names_.clear();
  lane_tracks_.clear();
  num_tracks_ = std::max(num_tracks_, reserved_tracks_);
}

void TraceSession::reserve_tracks(int n) {
  PGB_REQUIRE(n >= 0, "trace: negative track reservation");
  reserved_tracks_ = std::max(reserved_tracks_, n);
  if (n > 0) ensure_track(n - 1);
}

int TraceSession::alloc_named_track(std::string name) {
  const int track = std::max(num_tracks_, reserved_tracks_);
  ensure_track(track);
  track_names_[track] = std::move(name);
  return track;
}

const std::string* TraceSession::track_name(int track) const {
  auto it = track_names_.find(track);
  return it == track_names_.end() ? nullptr : &it->second;
}

int TraceSession::open_depth(int track) const {
  if (track < 0 || track >= static_cast<int>(open_.size())) return 0;
  return static_cast<int>(open_[static_cast<std::size_t>(track)].size());
}

double TraceSession::track_end(int track) const {
  double t = 0.0;
  for (const auto& s : spans_) {
    if (s.track == track) t = std::max(t, s.sim_end);
  }
  return t;
}

double TraceSession::track_coverage(int track) const {
  const double end = track_end(track);
  if (end <= 0.0) return 0.0;
  double covered = 0.0;
  for (const auto& s : spans_) {
    if (s.track == track && s.depth == 0) covered += s.sim_end - s.sim_begin;
  }
  return covered / end;
}

namespace {

void append_args_json(std::string& out, const TraceArgs& args,
                      double wall_us) {
  out += "\"args\":{";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", wall_us);
  out += std::string("\"wall_us\":") + buf;
  for (const auto& a : args) {
    out += ",\"" + json_escape(a.key) + "\":\"" + json_escape(a.value) + "\"";
  }
  out += "}";
}

std::string us(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6f", seconds * 1e6);
  return buf;
}

}  // namespace

std::string TraceSession::chrome_trace_json() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out +=
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"pgas-graphblas (simulated time)\"}}";
  for (int t = 0; t < num_tracks_; ++t) {
    const std::string* named = track_name(t);
    out += ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" +
           std::to_string(t) + ",\"args\":{\"name\":\"" +
           (named != nullptr ? json_escape(*named)
                             : "locale " + std::to_string(t)) +
           "\"}}";
    out +=
        ",\n{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":0,\"tid\":" +
        std::to_string(t) + ",\"args\":{\"sort_index\":" + std::to_string(t) +
        "}}";
  }
  for (const auto& s : spans_) {
    out += ",\n{\"ph\":\"X\",\"name\":\"" + json_escape(s.name) +
           "\",\"cat\":\"sim\",\"pid\":0,\"tid\":" + std::to_string(s.track) +
           ",\"ts\":" + us(s.sim_begin) +
           ",\"dur\":" + us(s.sim_end - s.sim_begin) + ",";
    append_args_json(out, s.args, s.wall_end_us - s.wall_begin_us);
    out += "}";
  }
  for (const auto& i : instants_) {
    out += ",\n{\"ph\":\"i\",\"name\":\"" + json_escape(i.name) +
           "\",\"cat\":\"sim\",\"pid\":0,\"tid\":" + std::to_string(i.track) +
           ",\"ts\":" + us(i.sim_ts) + ",\"s\":\"t\",";
    append_args_json(out, i.args, 0.0);
    out += "}";
  }
  for (const auto& c : counters_) {
    char val[48];
    std::snprintf(val, sizeof val, "%.17g", c.value);
    out += ",\n{\"ph\":\"C\",\"name\":\"" + json_escape(c.name) +
           "\",\"cat\":\"sim\",\"pid\":0,\"tid\":0,\"ts\":" + us(c.sim_ts) +
           ",\"args\":{\"value\":" + val + "}}";
  }
  out += "\n]}\n";
  return out;
}

void TraceSession::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  PGB_REQUIRE(f != nullptr, "trace: cannot open output file: " + path);
  const std::string json = chrome_trace_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

}  // namespace pgb::obs
