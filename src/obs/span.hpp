// RAII tracing scopes over the locale grid (header-only; sits above
// runtime/locale_grid.hpp in the layering, unlike the rest of src/obs
// which sits below it).
//
//   PGB_TRACE_SPAN(grid, "spmspv.gather");          grid-wide phase span
//   PGB_TRACE_SPAN(grid, "bfs.level",               ... with args
//                  {{"level", std::to_string(k)}});
//   PGB_TRACE_CTX_SPAN(ctx, "spmspv.spa");          one locale's span
//
// A grid span opens one span per locale track, each stamped with that
// locale's own SimClock, and closes them all when the scope ends — after
// a barrier-synchronized phase every track shows the same interval, and
// the per-track stacks give nested scopes their depth. On close, a grid
// span also attaches the grid-wide comm delta ("d_messages",
// "d_bytes") accumulated during the phase, so a timeline span answers
// "how much traffic did this phase move" without a metrics file.
// Grid spans additionally sample the counter tracks (comm.messages,
// comm.bytes, ...) at open and close, so Perfetto shows the cumulative
// counters stepping exactly at phase boundaries.
//
// When no session is attached the constructors reduce to one null
// check; scopes are also epoch-guarded, so a scope that survives a
// grid.reset() closes silently instead of writing into the new epoch.
#pragma once

#include <string>

#include "obs/trace.hpp"
#include "runtime/locale_grid.hpp"

namespace pgb::obs {

class GridSpan {
 public:
  GridSpan(LocaleGrid& grid, const char* name, TraceArgs args = {})
      : grid_(grid) {
    auto* session = grid.trace_session();
    if (session == nullptr) return;
    active_ = true;
    epoch_ = grid.epoch();
    const CommStats cs = grid.comm_stats();
    msgs0_ = cs.messages;
    bytes0_ = cs.bytes;
    grid.sample_counter_tracks();
    for (int l = 0; l < grid.num_locales(); ++l) {
      session->begin_span(l, name, grid.clock(l).now(), args);
    }
  }

  GridSpan(const GridSpan&) = delete;
  GridSpan& operator=(const GridSpan&) = delete;

  ~GridSpan() { end(); }

  /// Closes the span early (the destructor is then a no-op).
  void end() {
    if (!active_) return;
    active_ = false;
    auto* session = grid_.trace_session();
    if (session == nullptr || grid_.epoch() != epoch_) return;
    const CommStats cs = grid_.comm_stats();
    const TraceArgs extra{
        {"d_messages", std::to_string(cs.messages - msgs0_)},
        {"d_bytes", std::to_string(cs.bytes - bytes0_)}};
    for (int l = 0; l < grid_.num_locales(); ++l) {
      session->end_span(l, grid_.clock(l).now(), extra);
    }
    grid_.sample_counter_tracks();
  }

 private:
  LocaleGrid& grid_;
  bool active_ = false;
  std::uint64_t epoch_ = 0;
  std::int64_t msgs0_ = 0;
  std::int64_t bytes0_ = 0;
};

class LocaleSpan {
 public:
  LocaleSpan(LocaleCtx& ctx, const char* name, TraceArgs args = {})
      : grid_(ctx.grid()), locale_(ctx.locale()) {
    auto* session = grid_.trace_session();
    if (session == nullptr) return;
    active_ = true;
    epoch_ = grid_.epoch();
    session->begin_span(locale_, name, grid_.clock(locale_).now(),
                        std::move(args));
  }

  LocaleSpan(const LocaleSpan&) = delete;
  LocaleSpan& operator=(const LocaleSpan&) = delete;

  ~LocaleSpan() { end(); }

  void end() {
    if (!active_) return;
    active_ = false;
    auto* session = grid_.trace_session();
    if (session == nullptr || grid_.epoch() != epoch_) return;
    session->end_span(locale_, grid_.clock(locale_).now());
  }

 private:
  LocaleGrid& grid_;
  int locale_;
  bool active_ = false;
  std::uint64_t epoch_ = 0;
};

/// Instant event on one locale's track (no-op without a session).
inline void trace_instant(LocaleCtx& ctx, const char* name,
                          TraceArgs args = {}) {
  auto* session = ctx.grid().trace_session();
  if (session == nullptr) return;
  session->instant(ctx.locale(), name, ctx.clock().now(), std::move(args));
}

#define PGB_OBS_CONCAT2(a, b) a##b
#define PGB_OBS_CONCAT(a, b) PGB_OBS_CONCAT2(a, b)

/// Grid-wide phase span for the enclosing scope.
#define PGB_TRACE_SPAN(grid, ...)                                 \
  ::pgb::obs::GridSpan PGB_OBS_CONCAT(pgb_trace_span_, __LINE__)( \
      (grid), __VA_ARGS__)

/// Single-locale span (inside a coforall body) for the enclosing scope.
#define PGB_TRACE_CTX_SPAN(ctx, ...)                                    \
  ::pgb::obs::LocaleSpan PGB_OBS_CONCAT(pgb_trace_ctx_span_, __LINE__)( \
      (ctx), __VA_ARGS__)

}  // namespace pgb::obs
