#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace pgb::obs {

std::string metric_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name + "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ",";
    key += sorted[i].first + "=" + sorted[i].second;
  }
  key += "}";
  return key;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Histogram::observe(std::int64_t v) {
  ++count;
  sum += v;
  const auto u = static_cast<std::uint64_t>(v < 0 ? 0 : v);
  const int b = std::bit_width(u);  // 0 -> 0, 1 -> 1, 2..3 -> 2, ...
  ++buckets[static_cast<std::size_t>(std::min(b, kBuckets - 1))];
}

namespace {

std::int64_t quantile_bound_over(const std::int64_t* buckets, int n,
                                 std::int64_t count, double q) {
  if (count == 0) return 0;
  const double target = q * static_cast<double>(count);
  std::int64_t seen = 0;
  for (int b = 0; b < n; ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) >= target) {
      return b == 0 ? 0 : (std::int64_t{1} << std::min(b, 62)) - 1;
    }
  }
  return (std::int64_t{1} << 62) - 1;
}

}  // namespace

std::int64_t Histogram::quantile_bound(double q) const {
  return quantile_bound_over(buckets.data(), kBuckets, count, q);
}

std::int64_t MetricValue::hist_quantile_bound(double q) const {
  return quantile_bound_over(hist_buckets.data(),
                             static_cast<int>(hist_buckets.size()), hist_count,
                             q);
}

std::int64_t MetricsSnapshot::counter(const std::string& key) const {
  auto it = values.find(key);
  return it == values.end() ? 0 : it->second.counter;
}

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& after,
                                      const MetricsSnapshot& before) {
  MetricsSnapshot d = after;
  for (auto& [key, v] : d.values) {
    auto it = before.values.find(key);
    if (it == before.values.end()) continue;
    const MetricValue& b = it->second;
    v.counter -= b.counter;
    v.hist_count -= b.hist_count;
    v.hist_sum -= b.hist_sum;
    for (std::size_t i = 0;
         i < v.hist_buckets.size() && i < b.hist_buckets.size(); ++i) {
      v.hist_buckets[i] -= b.hist_buckets[i];
    }
  }
  return d;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [key, o] : other.values) {
    auto [it, inserted] = values.try_emplace(key, o);
    if (inserted) continue;
    MetricValue& v = it->second;
    v.counter += o.counter;
    v.gauge = o.gauge;
    v.hist_count += o.hist_count;
    v.hist_sum += o.hist_sum;
    if (v.hist_buckets.size() < o.hist_buckets.size()) {
      v.hist_buckets.resize(o.hist_buckets.size(), 0);
    }
    for (std::size_t i = 0; i < o.hist_buckets.size(); ++i) {
      v.hist_buckets[i] += o.hist_buckets[i];
    }
  }
}

std::string MetricsSnapshot::json() const {
  std::string out = "{\n  \"metrics\": [\n";
  bool first = true;
  for (const auto& [key, v] : values) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"name\": \"" + json_escape(key) + "\", ";
    switch (v.kind) {
      case MetricKind::kCounter:
        out += "\"kind\": \"counter\", \"value\": " +
               std::to_string(v.counter) + "}";
        break;
      case MetricKind::kGauge: {
        char buf[48];
        std::snprintf(buf, sizeof buf, "%.9g", v.gauge);
        out += std::string("\"kind\": \"gauge\", \"value\": ") + buf + "}";
        break;
      }
      case MetricKind::kHistogram: {
        // Summary quantiles ride alongside the raw power-of-two buckets
        // so two metrics files diff on "p95 moved" instead of bucket
        // vectors. p50/p95/max are bucket upper bounds (exact integers);
        // mean is sum/count.
        char mean[48];
        std::snprintf(mean, sizeof mean, "%.9g",
                      v.hist_count == 0
                          ? 0.0
                          : static_cast<double>(v.hist_sum) /
                                static_cast<double>(v.hist_count));
        out += "\"kind\": \"histogram\", \"count\": " +
               std::to_string(v.hist_count) +
               ", \"sum\": " + std::to_string(v.hist_sum) +
               ", \"mean\": " + mean +
               ", \"p50\": " + std::to_string(v.hist_quantile_bound(0.5)) +
               ", \"p95\": " + std::to_string(v.hist_quantile_bound(0.95)) +
               ", \"max\": " + std::to_string(v.hist_quantile_bound(1.0)) +
               ", \"buckets\": [";
        // Trailing all-zero buckets are elided to keep the file small.
        std::size_t last = v.hist_buckets.size();
        while (last > 0 && v.hist_buckets[last - 1] == 0) --last;
        for (std::size_t i = 0; i < last; ++i) {
          if (i > 0) out += ",";
          out += std::to_string(v.hist_buckets[i]);
        }
        out += "]}";
        break;
      }
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  return counters_[metric_key(name, labels)];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return gauges_[metric_key(name, labels)];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels) {
  return histograms_[metric_key(name, labels)];
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const Labels& labels) const {
  auto it = counters_.find(metric_key(name, labels));
  return it == counters_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 const Labels& labels) const {
  auto it = histograms_.find(metric_key(name, labels));
  return it == histograms_.end() ? nullptr : &it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  for (const auto& [key, c] : counters_) {
    MetricValue v;
    v.kind = MetricKind::kCounter;
    v.counter = c.value;
    s.values.emplace(key, std::move(v));
  }
  for (const auto& [key, g] : gauges_) {
    MetricValue v;
    v.kind = MetricKind::kGauge;
    v.gauge = g.value;
    s.values.emplace(key, std::move(v));
  }
  for (const auto& [key, h] : histograms_) {
    MetricValue v;
    v.kind = MetricKind::kHistogram;
    v.hist_count = h.count;
    v.hist_sum = h.sum;
    v.hist_buckets.assign(h.buckets.begin(), h.buckets.end());
    s.values.emplace(key, std::move(v));
  }
  return s;
}

void MetricsRegistry::reset() {
  for (auto& [key, c] : counters_) c = Counter{};
  for (auto& [key, g] : gauges_) g = Gauge{};
  for (auto& [key, h] : histograms_) h = Histogram{};
}

}  // namespace pgb::obs
