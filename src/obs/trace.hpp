// Simulated-time tracing: per-locale tracks of spans and instant events.
//
// A TraceSession records what each locale was doing and *when in
// simulated time* it was doing it — the per-locale SimClock stamps the
// events, so the exported timeline is the modeled distributed-memory
// schedule (gather / local multiply / scatter / barrier wait per
// locale), not the host's wall clock. Real wall time is recorded
// alongside each span for profiling the simulator itself.
//
// One track per locale. Spans nest (a "spmspv.spa" span sits inside the
// grid-wide "spmspv.local" phase span); per-track open-span stacks give
// each span its nesting depth, and RAII scopes (obs/span.hpp) guarantee
// LIFO close order. The session is attached to a LocaleGrid with
// `grid.set_trace_session(&session)`; a null session means every
// recording site is a cheap branch-to-nothing, which is how tracing
// stays free when off.
//
// Export: `chrome_trace_json()` / `write_chrome_trace(path)` emit the
// Chrome trace-event format ("X" complete events + "i" instants + "C"
// counter samples, ts in microseconds of simulated time), loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing. Each locale
// appears as one named thread track; span args carry the wall-time cost
// and any key/values attached at the call site. Counter samples become
// one Perfetto counter track per name, aligned with the spans.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pgb::obs {

struct TraceArg {
  std::string key;
  std::string value;
};
using TraceArgs = std::vector<TraceArg>;

struct SpanEvent {
  std::string name;
  int track = 0;  ///< locale id
  int depth = 0;  ///< nesting depth at open (0 = top level)
  double sim_begin = 0.0;  ///< seconds of simulated time
  double sim_end = 0.0;
  double wall_begin_us = 0.0;  ///< µs of host wall time since session start
  double wall_end_us = 0.0;
  TraceArgs args;
};

struct InstantEvent {
  std::string name;
  int track = 0;
  double sim_ts = 0.0;
  double wall_us = 0.0;
  TraceArgs args;
};

/// One sample of a cumulative counter, exported as a Chrome trace "C"
/// event — Perfetto renders each distinct name as a counter track on
/// the same simulated-time axis as the spans. Samples are grid-wide
/// (the registry's counters are grid totals), so they live on track 0.
struct CounterSample {
  std::string name;    ///< track name, usually the registry key
  double sim_ts = 0.0;
  double value = 0.0;
};

class TraceSession {
 public:
  /// `detail` additionally records per-call comm instants (one event per
  /// remote_* helper call and per aggregator flush) — high event volume,
  /// off by default.
  explicit TraceSession(bool detail = false) : detail_(detail) {
    t0_ = std::chrono::steady_clock::now();
  }

  bool detail() const { return detail_; }
  void set_detail(bool on) { detail_ = on; }

  /// Opens a span on `track` at simulated time `sim_now`. Close with
  /// end_span — strictly LIFO per track (use the RAII scopes).
  void begin_span(int track, std::string name, double sim_now,
                  TraceArgs args = {});

  /// Closes the innermost open span on `track`; `extra` args are
  /// appended to the ones given at begin. Ignored when no span is open
  /// (the session was cleared mid-span by a grid reset).
  void end_span(int track, double sim_now, const TraceArgs& extra = {});

  void instant(int track, std::string name, double sim_now,
               TraceArgs args = {});

  /// Records one counter-track sample (see CounterSample). Callers
  /// sample at span/phase boundaries — LocaleGrid::sample_counter_tracks
  /// is the standard hook — so each track stays monotone in both ts and
  /// value for cumulative counters.
  void counter(std::string name, double sim_now, double value);

  /// Drops every recorded event and every open span. Called by
  /// LocaleGrid::reset() so a trace covers exactly one epoch. Custom
  /// track names and lane bindings minted in the old epoch are dropped
  /// too; the reserved locale-track floor (reserve_tracks) survives.
  void clear();

  // -- named tracks (per-query tracks above the locale tracks) ----------

  /// Guarantees the first `n` track ids stay reserved for the locale
  /// tracks: alloc_named_track() hands out ids at or above `n`.
  /// LocaleGrid::set_trace_session calls this with num_locales().
  void reserve_tracks(int n);

  /// Allocates a fresh track above every track seen so far and names it;
  /// the exporter labels it `name` instead of "locale N".
  int alloc_named_track(std::string name);

  /// Custom name for `track` (nullptr when none was set).
  const std::string* track_name(int track) const;

  // -- lane bindings (batched state machines -> per-query tracks) -------
  //
  // The service executor binds each batch lane to its query's track
  // before running a fused batch; the batched BFS/SSSP steps consult the
  // binding to emit per-level "query.level" spans on the right track
  // without the algo layer knowing about queries.

  void set_lane_tracks(std::vector<int> tracks) {
    lane_tracks_ = std::move(tracks);
  }
  void clear_lane_tracks() { lane_tracks_.clear(); }
  bool has_lane_tracks() const { return !lane_tracks_.empty(); }

  /// Track bound to batch lane `lane` (-1 when unbound).
  int lane_track(int lane) const {
    if (lane < 0 || lane >= static_cast<int>(lane_tracks_.size())) return -1;
    return lane_tracks_[static_cast<std::size_t>(lane)];
  }

  const std::vector<SpanEvent>& spans() const { return spans_; }
  const std::vector<InstantEvent>& instants() const { return instants_; }
  const std::vector<CounterSample>& counter_samples() const {
    return counters_;
  }

  /// Number of tracks touched so far (max track id + 1).
  int num_tracks() const { return num_tracks_; }
  int open_depth(int track) const;

  /// Latest simulated end time on `track` (0 when empty).
  double track_end(int track) const;

  /// Fraction of [0, track_end] covered by the track's depth-0 spans —
  /// the "does the trace explain where time went" number.
  double track_coverage(int track) const;

  std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;

  /// µs of host wall time since the session was created.
  double wall_now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  struct OpenSpan {
    std::string name;
    double sim_begin;
    double wall_begin;
    TraceArgs args;
  };

  void ensure_track(int track);

  bool detail_;
  std::chrono::steady_clock::time_point t0_;
  int num_tracks_ = 0;
  int reserved_tracks_ = 0;  ///< locale-track floor for alloc_named_track
  std::vector<std::vector<OpenSpan>> open_;  ///< per-track stacks
  std::vector<SpanEvent> spans_;
  std::vector<InstantEvent> instants_;
  std::vector<CounterSample> counters_;
  std::map<int, std::string> track_names_;
  std::vector<int> lane_tracks_;
};

}  // namespace pgb::obs
