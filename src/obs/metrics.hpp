// Metrics registry: named counters / gauges / histograms with labels.
//
// The observability backbone of the runtime. Every layer publishes into
// one grid-owned registry — the comm helpers their message/byte tallies,
// the aggregation layer its flush counts and occupancy histograms, the
// collectives their call counts, the kernels their per-phase comm
// attribution — and every consumer (CommStats, `pgb --metrics`, benches,
// tests) reads *views* of it instead of keeping parallel books.
//
// Conventions:
//   - names are dot-separated, lowest layer first: "comm.messages",
//     "agg.flushes", "spmspv.messages";
//   - labels refine a name into a family: counter("comm.messages",
//     {{"path", "bulk"}}) — the flat key renders as
//     comm.messages{path=bulk}, labels sorted by key;
//   - counters only go up (until reset), gauges hold a last value,
//     histograms bucket int64 observations by power of two.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime (node-based storage), so hot paths look a metric
// up once and bump a pointer thereafter.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace pgb::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

/// Flat registry key: "name" or "name{k1=v1,k2=v2}" (labels sorted).
std::string metric_key(const std::string& name, const Labels& labels);

/// JSON string escaping for exporters (quotes, backslashes, control
/// characters).
std::string json_escape(const std::string& s);

struct Counter {
  std::int64_t value = 0;
  void inc(std::int64_t d = 1) { value += d; }
};

struct Gauge {
  double value = 0.0;
  void set(double v) { value = v; }
  void add(double d) { value += d; }
};

/// Power-of-two histogram of non-negative int64 observations: bucket b
/// counts values whose bit width is b (0 -> bucket 0, 1 -> 1, 2..3 -> 2,
/// 4..7 -> 3, ...), so bucket b's upper bound is 2^b - 1.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::int64_t v);

  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::array<std::int64_t, kBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound (inclusive) of the smallest bucket holding quantile `q`
  /// of the observations; 0 for an empty histogram.
  std::int64_t quantile_bound(double q) const;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's value at snapshot time.
struct MetricValue {
  MetricKind kind = MetricKind::kCounter;
  std::int64_t counter = 0;
  double gauge = 0.0;
  std::int64_t hist_count = 0;
  std::int64_t hist_sum = 0;
  std::vector<std::int64_t> hist_buckets;  ///< empty unless a histogram

  /// Histogram quantile over the snapshotted buckets (same semantics as
  /// Histogram::quantile_bound): upper bound (inclusive) of the smallest
  /// bucket holding quantile `q`; 0 when empty or not a histogram.
  std::int64_t hist_quantile_bound(double q) const;
};

/// Point-in-time copy of a registry; value semantics, so callers can
/// diff two snapshots around a phase or merge snapshots across runs.
class MetricsSnapshot {
 public:
  std::map<std::string, MetricValue> values;

  /// Counter value by flat key; 0 when absent.
  std::int64_t counter(const std::string& key) const;

  /// after - before, element-wise: counters and histogram counts
  /// subtract, gauges keep `after`'s value. Keys only in `after` pass
  /// through; keys only in `before` are dropped.
  static MetricsSnapshot diff(const MetricsSnapshot& after,
                              const MetricsSnapshot& before);

  /// Element-wise accumulate `other` into this snapshot (counters and
  /// histograms add, gauges take `other`'s value).
  void merge(const MetricsSnapshot& other);

  std::string json() const;
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});

  /// Non-registering lookups (nullptr when absent) — for samplers that
  /// must not create metrics as a side effect of observing them.
  const Counter* find_counter(const std::string& name,
                              const Labels& labels = {}) const;
  const Histogram* find_histogram(const std::string& name,
                                  const Labels& labels = {}) const;

  MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric; registrations (and the handles
  /// already returned) stay valid.
  void reset();

  std::string json() const { return snapshot().json(); }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace pgb::obs
