#include "obs/profile.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace pgb::obs {

namespace {

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Parses a fully-integer string ("-12", "400"); false otherwise.
bool parse_int(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = static_cast<std::int64_t>(v);
  return true;
}

// -------------------------------------------------------------------
// Building: reconstruct each track's span forest from close order,
// then fold instances into the name-keyed tree.
// -------------------------------------------------------------------

/// Accumulator node: ProfileNode plus the per-track inclusive totals
/// needed for the min/mean/max finalization.
struct Acc {
  std::int64_t count = 0;
  double incl = 0.0;
  double self = 0.0;
  std::map<int, double> by_track;
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, Acc> children;
};

struct Inst {
  const SpanEvent* ev = nullptr;
  std::vector<Inst> children;
};

void fold_instance(const Inst& inst, int track,
                   std::map<std::string, Acc>& accs) {
  Acc& a = accs[inst.ev->name];
  const double incl = inst.ev->sim_end - inst.ev->sim_begin;
  double child_incl = 0.0;
  for (const Inst& c : inst.children) {
    child_incl += c.ev->sim_end - c.ev->sim_begin;
  }
  ++a.count;
  a.incl += incl;
  a.self += incl - child_incl;
  a.by_track[track] += incl;
  for (const TraceArg& arg : inst.ev->args) {
    std::int64_t v = 0;
    if (parse_int(arg.value, v)) a.counters[arg.key] += v;
  }
  for (const Inst& c : inst.children) fold_instance(c, track, a.children);
}

ProfileNode finalize(const Acc& a) {
  ProfileNode n;
  n.count = a.count;
  n.incl = a.incl;
  n.self = a.self;
  n.locales = static_cast<int>(a.by_track.size());
  if (!a.by_track.empty()) {
    double mn = a.by_track.begin()->second, mx = mn, sum = 0.0;
    for (const auto& [track, t] : a.by_track) {
      mn = std::min(mn, t);
      mx = std::max(mx, t);
      sum += t;
    }
    n.incl_min = mn;
    n.incl_max = mx;
    n.incl_mean = sum / static_cast<double>(a.by_track.size());
  }
  n.counters = a.counters;
  for (const auto& [name, child] : a.children) {
    n.children.emplace(name, finalize(child));
  }
  return n;
}

}  // namespace

Profile build_profile(const TraceSession& session,
                      const MetricsSnapshot& snap) {
  Profile p;

  // The recorded span order per track is close order, i.e. a post-order
  // walk of the span forest (RAII scopes close LIFO): a span at depth d
  // adopts every still-unattached depth-(d+1) span as its children.
  std::vector<std::vector<std::vector<Inst>>> pending(
      static_cast<std::size_t>(session.num_tracks()));
  for (const SpanEvent& s : session.spans()) {
    auto& track = pending[static_cast<std::size_t>(s.track)];
    if (static_cast<int>(track.size()) <= s.depth + 1) {
      track.resize(static_cast<std::size_t>(s.depth) + 2);
    }
    Inst inst;
    inst.ev = &s;
    inst.children = std::move(track[static_cast<std::size_t>(s.depth) + 1]);
    track[static_cast<std::size_t>(s.depth) + 1].clear();
    track[static_cast<std::size_t>(s.depth)].push_back(std::move(inst));
  }

  std::map<std::string, Acc> roots;
  double total = 0.0;
  for (int t = 0; t < session.num_tracks(); ++t) {
    auto& track = pending[static_cast<std::size_t>(t)];
    if (track.empty()) continue;
    for (const Inst& root : track[0]) fold_instance(root, t, roots);
    total = std::max(total, session.track_end(t));
  }
  for (const auto& [name, acc] : roots) {
    p.spans.emplace(name, finalize(acc));
  }
  p.total_time = total;

  for (const auto& [key, v] : snap.values) {
    switch (v.kind) {
      case MetricKind::kCounter:
        p.counters.emplace(key, v.counter);
        break;
      case MetricKind::kHistogram: {
        ProfileHistogram h;
        h.count = v.hist_count;
        h.sum = v.hist_sum;
        h.p50 = v.hist_quantile_bound(0.5);
        h.p95 = v.hist_quantile_bound(0.95);
        h.max = v.hist_quantile_bound(1.0);
        p.histograms.emplace(key, h);
        break;
      }
      case MetricKind::kGauge:
        // Gauges hold "latest value" state, not cumulative facts about
        // the run; they stay out of the gated artifact.
        break;
    }
  }
  return p;
}

// -------------------------------------------------------------------
// Serialization
// -------------------------------------------------------------------

namespace {

void append_node_json(std::string& out, const ProfileNode& n, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  out += "{\n";
  out += pad + "  \"count\": " + std::to_string(n.count) + ",\n";
  out += pad + "  \"incl\": " + fmt(n.incl) + ",\n";
  out += pad + "  \"self\": " + fmt(n.self) + ",\n";
  out += pad + "  \"locales\": " + std::to_string(n.locales) + ",\n";
  out += pad + "  \"incl_min\": " + fmt(n.incl_min) + ",\n";
  out += pad + "  \"incl_mean\": " + fmt(n.incl_mean) + ",\n";
  out += pad + "  \"incl_max\": " + fmt(n.incl_max) + ",\n";
  out += pad + "  \"counters\": {";
  bool first = true;
  for (const auto& [key, v] : n.counters) {
    out += first ? "" : ", ";
    first = false;
    out += "\"" + json_escape(key) + "\": " + std::to_string(v);
  }
  out += "},\n";
  out += pad + "  \"children\": {";
  first = true;
  for (const auto& [name, child] : n.children) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad + "    \"" + json_escape(name) + "\": ";
    append_node_json(out, child, indent + 2);
  }
  if (!n.children.empty()) out += "\n" + pad + "  ";
  out += "}\n" + pad + "}";
}

ProfileNode node_from_json(const JsonValue& v) {
  ProfileNode n;
  n.count = v.at("count").as_int();
  n.incl = v.at("incl").as_double();
  n.self = v.at("self").as_double();
  n.locales = static_cast<int>(v.at("locales").as_int());
  n.incl_min = v.at("incl_min").as_double();
  n.incl_mean = v.at("incl_mean").as_double();
  n.incl_max = v.at("incl_max").as_double();
  for (const auto& [key, cv] : *v.at("counters").obj) {
    n.counters.emplace(key, cv.as_int());
  }
  for (const auto& [name, child] : *v.at("children").obj) {
    n.children.emplace(name, node_from_json(child));
  }
  return n;
}

}  // namespace

std::string Profile::json() const {
  std::string out = "{\n";
  out += "  \"pgb_profile\": " + std::to_string(kVersion) + ",\n";
  out += "  \"workload\": \"" + json_escape(workload) + "\",\n";
  out += "  \"comm\": \"" + json_escape(comm) + "\",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"locales\": " + std::to_string(locales) + ",\n";
  out += "  \"threads\": " + std::to_string(threads) + ",\n";
  out += "  \"machine\": \"" + json_escape(machine) + "\",\n";
  out += "  \"total_time\": " + fmt(total_time) + ",\n";
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [key, v] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(key) + "\": " + std::to_string(v);
  }
  if (!counters.empty()) out += "\n  ";
  out += "},\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [key, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(key) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + std::to_string(h.sum) +
           ", \"p50\": " + std::to_string(h.p50) +
           ", \"p95\": " + std::to_string(h.p95) +
           ", \"max\": " + std::to_string(h.max) + "}";
  }
  if (!histograms.empty()) out += "\n  ";
  out += "},\n";
  out += "  \"spans\": {";
  first = true;
  for (const auto& [name, node] : spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": ";
    append_node_json(out, node, 2);
  }
  if (!spans.empty()) out += "\n  ";
  out += "}\n}\n";
  return out;
}

void Profile::write(const std::string& path) const {
  std::ofstream out(path);
  PGB_REQUIRE(out.good(), "profile: cannot open output file: " + path);
  out << json();
  PGB_REQUIRE(out.good(), "profile: write failed: " + path);
}

Profile Profile::from_json(const std::string& text) {
  const JsonValue v = json_parse(text);
  PGB_REQUIRE(v.is_object(), "profile: top level must be an object");
  const std::int64_t version = v.at("pgb_profile").as_int();
  PGB_REQUIRE(version == kVersion,
              "profile: unsupported version " + std::to_string(version));
  Profile p;
  p.workload = v.at("workload").as_string();
  p.comm = v.at("comm").as_string();
  p.seed = static_cast<std::uint64_t>(v.at("seed").as_int());
  p.locales = static_cast<int>(v.at("locales").as_int());
  p.threads = static_cast<int>(v.at("threads").as_int());
  p.machine = v.at("machine").as_string();
  p.total_time = v.at("total_time").as_double();
  for (const auto& [key, cv] : *v.at("counters").obj) {
    p.counters.emplace(key, cv.as_int());
  }
  for (const auto& [key, hv] : *v.at("histograms").obj) {
    ProfileHistogram h;
    h.count = hv.at("count").as_int();
    h.sum = hv.at("sum").as_int();
    h.p50 = hv.at("p50").as_int();
    h.p95 = hv.at("p95").as_int();
    h.max = hv.at("max").as_int();
    p.histograms.emplace(key, h);
  }
  for (const auto& [name, nv] : *v.at("spans").obj) {
    p.spans.emplace(name, node_from_json(nv));
  }
  return p;
}

Profile Profile::load(const std::string& path) {
  std::ifstream in(path);
  PGB_REQUIRE(in.good(), "profile: cannot open: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  try {
    return from_json(buf.str());
  } catch (const Error& e) {
    throw InvalidArgument(path + ": " + e.what());
  }
}

// -------------------------------------------------------------------
// Diff / gate
// -------------------------------------------------------------------

namespace {

std::string pct(double base, double cand) {
  if (base == 0.0) return "n/a";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%+.1f%%", (cand / base - 1.0) * 100.0);
  return buf;
}

struct Differ {
  const ProfileDiffOptions& opt;
  ProfileDiffResult& res;

  void add(ProfileFinding::Kind kind, const std::string& where,
           const std::string& metric, double base, double cand) {
    res.findings.push_back(ProfileFinding{kind, where, metric, base, cand});
  }

  void exact(const std::string& where, const std::string& metric,
             double base, double cand) {
    ++res.compared;
    if (base != cand) {
      add(ProfileFinding::Kind::kRegression, where, metric, base, cand);
    }
  }

  void timed(const std::string& where, const std::string& metric,
             double base, double cand) {
    ++res.compared;
    if (base < opt.time_floor && cand < opt.time_floor) return;
    if (cand > base * (1.0 + opt.time_tol)) {
      add(ProfileFinding::Kind::kRegression, where, metric, base, cand);
    } else if (cand < base * (1.0 - opt.time_tol)) {
      add(ProfileFinding::Kind::kImprovement, where, metric, base, cand);
    }
  }

  void structural(const std::string& where, const std::string& what) {
    res.findings.push_back(ProfileFinding{
        ProfileFinding::Kind::kStructural, where, what, 0.0, 0.0});
  }

  /// Key-set comparison of two maps; `compare` runs on shared keys.
  template <typename Map, typename Fn>
  void align(const std::string& where, const Map& base, const Map& cand,
             Fn compare) {
    for (const auto& [key, bv] : base) {
      auto it = cand.find(key);
      if (it == cand.end()) {
        structural(where + "/" + key, "missing in candidate");
      } else {
        compare(where + "/" + key, bv, it->second);
      }
    }
    for (const auto& [key, cv] : cand) {
      if (base.find(key) == base.end()) {
        structural(where + "/" + key, "new in candidate");
      }
    }
  }

  void node(const std::string& where, const ProfileNode& b,
            const ProfileNode& c) {
    exact(where, "count", static_cast<double>(b.count),
          static_cast<double>(c.count));
    exact(where, "locales", b.locales, c.locales);
    align(where + "/counters", b.counters, c.counters,
          [&](const std::string& w, std::int64_t bv, std::int64_t cv) {
            exact(w, "value", static_cast<double>(bv),
                  static_cast<double>(cv));
          });
    timed(where, "incl_mean", b.incl_mean, c.incl_mean);
    timed(where, "incl_max", b.incl_max, c.incl_max);
    timed(where, "self", b.self, c.self);
    align(where, b.children, c.children,
          [&](const std::string& w, const ProfileNode& bn,
              const ProfileNode& cn) { node(w, bn, cn); });
  }
};

}  // namespace

std::string ProfileFinding::to_string() const {
  if (kind == Kind::kStructural) {
    return "STRUCTURAL  " + where + ": " + metric;
  }
  const char* tag =
      kind == Kind::kRegression ? "REGRESSION  " : "improvement ";
  char nums[128];
  std::snprintf(nums, sizeof nums, "%.6g -> %.6g (%s)", base, cand,
                pct(base, cand).c_str());
  return tag + where + " " + metric + ": " + nums;
}

bool ProfileDiffResult::clean() const {
  for (const auto& f : findings) {
    if (f.kind != ProfileFinding::Kind::kImprovement) return false;
  }
  return true;
}

std::string ProfileDiffResult::report(const std::string& base_name,
                                      const std::string& cand_name) const {
  int reg = 0, structural = 0, imp = 0;
  for (const auto& f : findings) {
    switch (f.kind) {
      case ProfileFinding::Kind::kRegression: ++reg; break;
      case ProfileFinding::Kind::kStructural: ++structural; break;
      case ProfileFinding::Kind::kImprovement: ++imp; break;
    }
  }
  std::string out = "profile diff: " + base_name + " (base) vs " + cand_name +
                    " (candidate)\n";
  char line[160];
  std::snprintf(line, sizeof line,
                "compared %d metrics: %d regressions, %d structural changes, "
                "%d improvements\n",
                compared, reg, structural, imp);
  out += line;
  // Failures first, improvements after.
  for (const auto& f : findings) {
    if (f.kind != ProfileFinding::Kind::kImprovement) {
      out += "  " + f.to_string() + "\n";
    }
  }
  for (const auto& f : findings) {
    if (f.kind == ProfileFinding::Kind::kImprovement) {
      out += "  " + f.to_string() + "\n";
    }
  }
  out += clean() ? "RESULT: clean\n" : "RESULT: regression\n";
  return out;
}

ProfileDiffResult diff_profiles(const Profile& base, const Profile& cand,
                                const ProfileDiffOptions& opt) {
  ProfileDiffResult res;
  Differ d{opt, res};

  // Workload identity must match for the comparison to mean anything.
  if (base.workload != cand.workload) {
    d.structural("meta/workload", "\"" + base.workload + "\" vs \"" +
                                      cand.workload + "\"");
  }
  if (base.comm != cand.comm) {
    d.structural("meta/comm", base.comm + " vs " + cand.comm);
  }
  if (base.seed != cand.seed) {
    d.structural("meta/seed", std::to_string(base.seed) + " vs " +
                                  std::to_string(cand.seed));
  }
  if (base.machine != cand.machine) {
    d.structural("meta/machine", base.machine + " vs " + cand.machine);
  }
  d.exact("meta", "locales", base.locales, cand.locales);
  d.exact("meta", "threads", base.threads, cand.threads);

  d.timed("meta", "total_time", base.total_time, cand.total_time);

  d.align("counters", base.counters, cand.counters,
          [&](const std::string& w, std::int64_t bv, std::int64_t cv) {
            d.exact(w, "value", static_cast<double>(bv),
                    static_cast<double>(cv));
          });
  d.align("histograms", base.histograms, cand.histograms,
          [&](const std::string& w, const ProfileHistogram& bh,
              const ProfileHistogram& ch) {
            d.exact(w, "count", static_cast<double>(bh.count),
                    static_cast<double>(ch.count));
            d.exact(w, "sum", static_cast<double>(bh.sum),
                    static_cast<double>(ch.sum));
            d.exact(w, "p50", static_cast<double>(bh.p50),
                    static_cast<double>(ch.p50));
            d.exact(w, "p95", static_cast<double>(bh.p95),
                    static_cast<double>(ch.p95));
            d.exact(w, "max", static_cast<double>(bh.max),
                    static_cast<double>(ch.max));
          });
  d.align("spans", base.spans, cand.spans,
          [&](const std::string& w, const ProfileNode& bn,
              const ProfileNode& cn) { d.node(w, bn, cn); });
  return res;
}

namespace {

void scale_nodes(std::map<std::string, ProfileNode>& nodes,
                 const std::string& name, double factor) {
  for (auto& [key, n] : nodes) {
    if (key == name) {
      n.incl *= factor;
      n.self *= factor;
      n.incl_min *= factor;
      n.incl_mean *= factor;
      n.incl_max *= factor;
    }
    scale_nodes(n.children, name, factor);
  }
}

}  // namespace

void scale_span_times(Profile& p, const std::string& name, double factor) {
  scale_nodes(p.spans, name, factor);
}

}  // namespace pgb::obs
